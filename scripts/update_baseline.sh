#!/usr/bin/env bash
# Regenerates the committed smoke-bench baseline (results/json/baseline/)
# that scripts/check.sh and CI diff against with memlp_report. Run after an
# intentional performance/accuracy change, eyeball the memlp_report diff it
# prints, and commit the updated BENCH_*.json files with the change.
#
# The sweep is pinned (MEMLP_MAX_M=16, 2 trials, seed 42, 1 thread) and must
# stay in lockstep with the smoke-bench stage in scripts/check.sh.
#
# Usage: scripts/update_baseline.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BASELINE_DIR="results/json/baseline"

if [ ! -x "$BUILD_DIR/bench/fig6a_latency" ]; then
  echo "error: $BUILD_DIR/bench/fig6a_latency not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

PINNED_ENV=(MEMLP_MAX_M=16 MEMLP_TRIALS=2 MEMLP_SEED=42 MEMLP_THREADS=1
            MEMLP_BENCH_DIR="$BASELINE_DIR")
mkdir -p "$BASELINE_DIR"
OLD_DIR="$(mktemp -d)"
trap 'rm -rf "$OLD_DIR"' EXIT
cp "$BASELINE_DIR"/BENCH_*.json "$OLD_DIR"/ 2>/dev/null || true

env "${PINNED_ENV[@]}" "$BUILD_DIR/bench/fig6a_latency" > /dev/null
env "${PINNED_ENV[@]}" "$BUILD_DIR/bench/fig7a_energy" > /dev/null
env "${PINNED_ENV[@]}" "$BUILD_DIR/bench/complexity_scaling" > /dev/null
env "${PINNED_ENV[@]}" "$BUILD_DIR/bench/ablation_sparsity" > /dev/null

echo "baseline refreshed under $BASELINE_DIR:"
ls -1 "$BASELINE_DIR"
if ls "$OLD_DIR"/BENCH_*.json > /dev/null 2>&1 &&
   [ -x "$BUILD_DIR/tools/memlp_report" ]; then
  echo
  echo "diff vs previous baseline (informational):"
  "$BUILD_DIR/tools/memlp_report" --tolerance-measured 5.0 \
    "$OLD_DIR" "$BASELINE_DIR" || true
fi
