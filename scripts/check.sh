#!/usr/bin/env bash
# Pre-merge gate: static analysis first, then sanitized builds + the full
# tier-1 test suite. One command, three stages:
#
#   0. Static gate (fast, runs first so cheap failures stop the expensive
#      stages): a -DMEMLP_WERROR=ON build of the whole tree — which also
#      compiles the generated per-header self-containment objects
#      (memlp_header_check) — plus the memlint project-invariant linter
#      over the real tree (rules R1–R10, docs/static-analysis.md) with a
#      per-rule hit/suppression summary. When clang-tidy is on PATH the
#      build additionally runs it over src/ via -DMEMLP_TIDY=ON with
#      --warnings-as-errors=*.
#   1. -DMEMLP_SANITIZE=ON (ASan + UBSan): builds everything and runs the
#      full suite with ctest -j. Any sanitizer report fails the
#      corresponding test, so a clean run means the suite is memory- and
#      UB-clean.
#   2. -DMEMLP_SANITIZE=thread (TSan): builds the concurrency-sensitive
#      binaries (test_par, test_obs, test_prof, test_tiled, test_crossbar —
#      the last two exercise the parallel tile paths) and runs them under
#      MEMLP_THREADS=4, proving the memlp::par pool, the parallel
#      tile/linalg paths, and the trace/metrics/profiler sinks are
#      race-free.
#   3. Smoke bench: fig6a_latency + fig7a_energy + complexity_scaling +
#      ablation_sparsity at a pinned tiny sweep (fixed seed, MEMLP_MAX_M=16,
#      2 trials) into a temp dir, then memlp_report against the committed
#      results/json/baseline tree — the regression gate from
#      docs/observability.md. Deterministic estimated metrics (including
#      the settle-cache factorization counts, the sparse-Schur flop
#      crossover, and zero-shard counts) use the default tight tolerance;
#      measured wall clocks get a machine-tolerant band. ablation_sparsity
#      additionally hard-fails if the sparse Schur assembly is not >= 5x
#      cheaper than the dense form at 5% density, m = 512.
#
# Usage: scripts/check.sh [extra ctest args for the ASan run...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${MEMLP_CHECK_BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${MEMLP_CHECK_TSAN_BUILD_DIR:-build-check-tsan}"
STATIC_BUILD_DIR="${MEMLP_CHECK_STATIC_BUILD_DIR:-build-check-static}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

TIDY=OFF
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY=ON
fi

echo "== Static gate (memlint + Werror, clang-tidy: $TIDY) =="
if [ "$TIDY" = OFF ]; then
  echo "note: clang-tidy not on PATH; tidy checks skipped in this run"
fi
cmake -B "$STATIC_BUILD_DIR" -S . -DMEMLP_WERROR=ON -DMEMLP_TIDY="$TIDY" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$STATIC_BUILD_DIR" -j "$JOBS"
"$STATIC_BUILD_DIR/tools/memlint" --root . --summary

echo "== ASan/UBSan gate =="
cmake -B "$BUILD_DIR" -S . -DMEMLP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"
# A solver failure or contract trip during the suite dumps the flight
# recorder (docs/observability.md) — pin the dump next to the build so a
# failing run leaves its post-mortem at a known path (CI uploads it).
# Tests that assert on the dump override MEMLP_FLIGHT_DUMP themselves.
FLIGHT_DUMP="$PWD/$BUILD_DIR/memlp_flight.jsonl"
rm -f "$FLIGHT_DUMP"
if ! MEMLP_FLIGHT_DUMP="$FLIGHT_DUMP" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"; then
  [ -s "$FLIGHT_DUMP" ] && \
    echo "flight-recorder dump preserved at $FLIGHT_DUMP"
  exit 1
fi

echo "== TSan gate (test_par + test_obs + test_prof + test_tiled + test_crossbar) =="
cmake -B "$TSAN_BUILD_DIR" -S . -DMEMLP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" \
  --target test_par test_obs test_prof test_tiled test_crossbar
MEMLP_THREADS=4 ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
  -j "$JOBS" -L 'test_par|test_obs|test_prof|test_tiled|test_crossbar'

echo "== Smoke bench vs results/json/baseline =="
# Runs the unsanitized static-gate binaries (sanitizers would skew wall
# clocks); the deterministic estimated metrics carry the gate at the tight
# default tolerance, measured wall clocks get a machine-tolerant 5x band.
# The pinned sweep must match scripts/update_baseline.sh, or every
# comparison is apples to oranges.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SMOKE_ENV=(MEMLP_MAX_M=16 MEMLP_TRIALS=2 MEMLP_SEED=42 MEMLP_THREADS=1
           MEMLP_BENCH_DIR="$SMOKE_DIR")
env "${SMOKE_ENV[@]}" "$STATIC_BUILD_DIR/bench/fig6a_latency" > /dev/null
env "${SMOKE_ENV[@]}" "$STATIC_BUILD_DIR/bench/fig7a_energy" > /dev/null
env "${SMOKE_ENV[@]}" "$STATIC_BUILD_DIR/bench/complexity_scaling" > /dev/null
env "${SMOKE_ENV[@]}" "$STATIC_BUILD_DIR/bench/ablation_sparsity" > /dev/null
"$STATIC_BUILD_DIR/tools/memlp_report" --require-coverage \
  --tolerance-measured 5.0 results/json/baseline "$SMOKE_DIR"
