#!/usr/bin/env bash
# Pre-merge gate: sanitized builds + full tier-1 test suite.
#
# Two sanitizer trees:
#   1. -DMEMLP_SANITIZE=ON (ASan + UBSan): builds everything and runs the
#      full suite with ctest -j. Any sanitizer report fails the
#      corresponding test, so a clean run means the suite is memory- and
#      UB-clean.
#   2. -DMEMLP_SANITIZE=thread (TSan): builds the concurrency-sensitive
#      binaries (test_par, test_obs) and runs them under MEMLP_THREADS=4,
#      proving the memlp::par pool, the parallel tile/linalg paths, and the
#      trace/metrics sinks are race-free.
#
# Usage: scripts/check.sh [extra ctest args for the ASan run...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${MEMLP_CHECK_BUILD_DIR:-build-check}"
TSAN_BUILD_DIR="${MEMLP_CHECK_TSAN_BUILD_DIR:-build-check-tsan}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== ASan/UBSan gate =="
cmake -B "$BUILD_DIR" -S . -DMEMLP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"

echo "== TSan gate (test_par + test_obs) =="
cmake -B "$TSAN_BUILD_DIR" -S . -DMEMLP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target test_par test_obs
MEMLP_THREADS=4 ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
  -j "$JOBS" -L 'test_par|test_obs'
