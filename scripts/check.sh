#!/usr/bin/env bash
# Pre-merge gate: sanitized build + full tier-1 test suite.
#
# Configures a dedicated build tree with -DMEMLP_SANITIZE=ON (ASan + UBSan),
# builds everything, and runs ctest. Any sanitizer report fails the
# corresponding test, so a clean run means the suite is memory- and
# UB-clean. Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${MEMLP_CHECK_BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DMEMLP_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
