#!/usr/bin/env bash
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
mkdir -p results
for b in build/bench/*; do
  name="$(basename "$b")"
  echo "== $name"
  "$b" | tee "results/${name}.txt"
done
