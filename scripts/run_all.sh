#!/usr/bin/env bash
# Full reproduction sweep: rebuild, run the tier-1 suite, then every bench
# harness (fig5a…fig7b, iterations, all ablations including
# ablation_mehrotra, micro benches), teeing the text reports into
# results/<name>.txt. Each harness also stamps a machine-readable
# BENCH_<name>.json artifact into $MEMLP_BENCH_DIR (default results/json)
# carrying the git SHA exported below — diff two sweeps with
# tools/memlp_report (docs/observability.md).
#
# Honors the usual sweep knobs (MEMLP_FULL=1 for paper-scale sizes,
# MEMLP_TRIALS, MEMLP_SEED, MEMLP_THREADS, …).
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
if [ ! -f build/CMakeCache.txt ]; then
  cmake -B build -S .
fi
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

MEMLP_GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
export MEMLP_GIT_SHA
export MEMLP_BENCH_DIR="${MEMLP_BENCH_DIR:-results/json}"
mkdir -p results "$MEMLP_BENCH_DIR"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue  # skip CMake bookkeeping dirs
  name="$(basename "$b")"
  echo "== $name"
  "$b" | tee "results/${name}.txt"
done
