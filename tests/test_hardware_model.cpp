// Tests for the latency/energy cost model.
#include <gtest/gtest.h>

#include "perf/hardware_model.hpp"

namespace memlp::perf {
namespace {

core::XbarSolveStats make_stats() {
  core::XbarSolveStats stats;
  stats.backend.xbar.cells_written = 1'000;
  stats.backend.xbar.write_pulses = 5'000;
  stats.backend.xbar.mvm_ops = 30;
  stats.backend.xbar.solve_ops = 30;
  stats.amps.vector_ops = 90;
  stats.amps.element_ops = 9'000;
  stats.iterations = 30;
  // 400 of the written cells were the initial O(N²) programming.
  stats.programming.xbar.cells_written = 400;
  stats.programming.xbar.write_pulses = 2'000;
  stats.programming.xbar.full_programs = 1;
  return stats;
}

TEST(HardwareModel, PricesEachComponent) {
  HardwareCostConstants constants;
  constants.settle_s = 1.0;
  constants.write_cell_s = 10.0;
  constants.write_pulse_s = 100.0;
  constants.amp_vector_op_s = 1000.0;
  constants.noc_value_hop_s = 0.0;
  constants.controller_iteration_s = 0.0;
  const HardwareModel model(constants);

  core::BackendStats backend;
  backend.xbar.mvm_ops = 2;
  backend.xbar.cells_written = 3;
  backend.xbar.write_pulses = 4;
  xbar::AmplifierStats amps;
  amps.vector_ops = 5;
  const auto cost = model.price(backend, amps, 0);
  EXPECT_DOUBLE_EQ(cost.latency_s, 2 * 1.0 + 3 * 10.0 + 4 * 100.0 + 5000.0);
}

TEST(HardwareModel, EstimateExcludesProgramming) {
  const HardwareModel model;
  const auto stats = make_stats();
  const auto iterative = model.estimate(stats);
  const auto programming = model.estimate_programming(stats);
  // Totals decompose exactly: price(total) = iterative + programming for
  // latency-additive counters (controller term only counts iterations once).
  const auto total =
      model.price(stats.backend, stats.amps, stats.iterations);
  EXPECT_NEAR(iterative.latency_s + programming.latency_s, total.latency_s,
              1e-12);
  EXPECT_NEAR(iterative.energy_j + programming.energy_j, total.energy_j,
              1e-9);
  EXPECT_GT(programming.latency_s, 0.0);
  EXPECT_GT(iterative.latency_s, programming.latency_s);
}

TEST(HardwareModel, MoreVariationMeansMoreIterationsMeansMoreCost) {
  const HardwareModel model;
  auto low = make_stats();
  auto high = make_stats();
  high.iterations *= 3;
  high.backend.xbar.cells_written *= 3;
  EXPECT_GT(model.estimate(high).latency_s, model.estimate(low).latency_s);
  EXPECT_GT(model.estimate(high).energy_j, model.estimate(low).energy_j);
}

TEST(HardwareModel, NocHopsAreCharged) {
  const HardwareModel model;
  auto with_noc = make_stats();
  with_noc.backend.noc.value_hops = 1'000'000;
  EXPECT_GT(model.estimate(with_noc).latency_s,
            model.estimate(make_stats()).latency_s);
}

TEST(CostEstimate, Accumulates) {
  CostEstimate a{1.0, 2.0};
  a += CostEstimate{0.5, 0.25};
  EXPECT_DOUBLE_EQ(a.latency_s, 1.5);
  EXPECT_DOUBLE_EQ(a.energy_j, 2.25);
}

TEST(CpuModel, EnergyIsPowerTimesTime) {
  const CpuModel cpu;
  const auto cost = cpu.estimate(2.0);
  EXPECT_DOUBLE_EQ(cost.latency_s, 2.0);
  EXPECT_DOUBLE_EQ(cost.energy_j, 70.0);  // 35 W default
}

TEST(HardwareModel, DefaultConstantsLandInPaperBallpark) {
  // A 1024-constraint solve in the paper: tens of ms, ~1 J. Synthesize the
  // operation counts of ~30 iterations at N = n+m = 1365.
  core::XbarSolveStats stats;
  const std::size_t n_plus_m = 1365;
  stats.iterations = 30;
  stats.backend.xbar.cells_written = 2 * n_plus_m * stats.iterations;
  stats.backend.xbar.write_pulses = stats.backend.xbar.cells_written * 5;
  stats.backend.xbar.mvm_ops = stats.iterations;
  stats.backend.xbar.solve_ops = stats.iterations;
  stats.amps.vector_ops = 4 * stats.iterations;
  stats.amps.element_ops = 4 * n_plus_m * stats.iterations;
  const HardwareModel model;
  const auto cost = model.estimate(stats);
  EXPECT_GT(cost.latency_s, 5e-3);
  EXPECT_LT(cost.latency_s, 500e-3);
  EXPECT_GT(cost.energy_j, 0.05);
  EXPECT_LT(cost.energy_j, 5.0);
}

}  // namespace
}  // namespace memlp::perf
