// Tests for the negative-coefficient elimination (Eq. 13 / 14a).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/negfree.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp::core {
namespace {

TEST(NegFree, NonNegativeMatrixNeedsNoCompensation) {
  const Matrix b{{1, 2}, {0, 3}};
  const NegativeFreeSystem sys(b);
  EXPECT_EQ(sys.num_compensations(), 0u);
  EXPECT_EQ(sys.dim(), 2u);
  EXPECT_EQ(sys.matrix(), b);
}

TEST(NegFree, RequiresSquare) {
  EXPECT_THROW(NegativeFreeSystem(Matrix(2, 3)), DimensionError);
}

TEST(NegFree, OneCompensationPerNegativeColumn) {
  // Column 0 has two negatives; column 2 has one; column 1 none.
  const Matrix b{{-1, 2, 3}, {-4, 5, -6}, {7, 8, 9}};
  const NegativeFreeSystem sys(b);
  EXPECT_EQ(sys.num_compensations(), 2u);
  EXPECT_EQ(sys.dim(), 5u);
  EXPECT_EQ(sys.compensated_column(0), 0u);
  EXPECT_EQ(sys.compensated_column(1), 2u);
  EXPECT_TRUE(sys.matrix().nonnegative());
}

TEST(NegFree, Eq13StructureMatchesPaper) {
  // The paper's single-negative example: magnitudes move to the new column
  // and the consistency row carries 1's at the variable and its companion.
  const Matrix b{{2, -3}, {4, 5}};
  const NegativeFreeSystem sys(b);
  const Matrix& m = sys.matrix();
  ASSERT_EQ(sys.dim(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);  // negative zeroed in place
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);  // |−3| in compensation column
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);  // positives untouched
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 1.0);  // consistency row: s_1 + p = 0
  EXPECT_DOUBLE_EQ(m(2, 2), 1.0);
}

TEST(NegFree, ExtendAppendsNegatedComponents) {
  const Matrix b{{2, -3}, {4, 5}};
  const NegativeFreeSystem sys(b);
  const Vec extended = sys.extend(Vec{1.0, 7.0});
  EXPECT_EQ(extended, (Vec{1.0, 7.0, -7.0}));
  EXPECT_EQ(sys.restrict(extended), (Vec{1.0, 7.0}));
  EXPECT_EQ(sys.extend_rhs(Vec{9.0, 8.0}), (Vec{9.0, 8.0, 0.0}));
}

TEST(NegFree, ProductMatchesOriginalOnBaseRows) {
  Rng rng(1);
  Matrix b(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) b(i, j) = rng.normal();
  const NegativeFreeSystem sys(b);
  Vec s(6);
  for (double& v : s) v = rng.uniform(-2.0, 2.0);
  const Vec augmented_product = gemv(sys.matrix(), sys.extend(s));
  const Vec original_product = gemv(b, s);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(augmented_product[i], original_product[i], 1e-12);
  // Consistency rows evaluate to zero on a consistent extension.
  for (std::size_t l = 6; l < sys.dim(); ++l)
    EXPECT_NEAR(augmented_product[l], 0.0, 1e-12);
}

// Central property (Eq. 13): solving the augmented non-negative system is
// equivalent to solving the original system with negative coefficients.
class NegFreeSolveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NegFreeSolveSweep, AugmentedSolveMatchesOriginal) {
  Rng rng(300 + GetParam());
  const std::size_t n = GetParam();
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  for (std::size_t i = 0; i < n; ++i) b(i, i) += static_cast<double>(n) + 2.0;

  const NegativeFreeSystem sys(b);
  EXPECT_TRUE(sys.matrix().nonnegative());
  Vec rhs(n);
  for (double& v : rhs) v = rng.uniform(-3.0, 3.0);

  const Vec expected = lu_solve(b, rhs);
  const Vec augmented = lu_solve(sys.matrix(), sys.extend_rhs(rhs));
  const Vec actual = sys.restrict(augmented);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(actual[i], expected[i], 1e-8 * (1.0 + std::abs(expected[i])));
  // The compensation components equal the negated base components.
  for (std::size_t l = 0; l < sys.num_compensations(); ++l)
    EXPECT_NEAR(augmented[n + l], -actual[sys.compensated_column(l)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NegFreeSolveSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 20, 40));

TEST(NegFree, UpdateBaseCellWritesThrough) {
  const Matrix b{{2, -3}, {4, 5}};
  NegativeFreeSystem sys(b);
  sys.update_base_cell(1, 0, 9.0);
  EXPECT_DOUBLE_EQ(sys.matrix()(1, 0), 9.0);
  EXPECT_THROW(sys.update_base_cell(0, 0, -1.0), ContractViolation);
  EXPECT_THROW(sys.update_base_cell(5, 0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace memlp::core
