// Property sweeps of the crossbar PDIP solver across the workload parameter
// grid: sign mix × sparsity × size. Each cell asserts the full contract —
// the solver either matches the exact optimum within the analog tolerance
// or reports an honest non-optimal status.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

using GridParam = std::tuple<std::size_t, double, double>;  // m, neg, sparse

class SolverGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(SolverGrid, MatchesExactOptimumOrFailsHonestly) {
  const auto [m, negative_fraction, sparsity] = GetParam();
  Rng rng(1000 + m * 7 +
          static_cast<std::uint64_t>(negative_fraction * 100) * 13 +
          static_cast<std::uint64_t>(sparsity * 100) * 17);
  lp::GeneratorOptions generator;
  generator.constraints = m;
  generator.negative_fraction = negative_fraction;
  generator.sparsity = sparsity;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  XbarPdipOptions options;
  options.seed = 2000 + m;
  const auto outcome = solve_xbar_pdip(problem, options);
  if (outcome.result.optimal()) {
    EXPECT_LT(lp::relative_error(outcome.result.objective,
                                 reference.objective),
              0.12)
        << "m=" << m << " neg=" << negative_fraction << " sp=" << sparsity;
    // Certificates are sane: non-negative primal/dual iterates.
    for (double v : outcome.result.x) EXPECT_GE(v, 0.0);
    for (double v : outcome.result.y) EXPECT_GE(v, 0.0);
  } else {
    // Must not claim infeasibility/unboundedness of a feasible bounded LP.
    EXPECT_TRUE(outcome.result.status == lp::SolveStatus::kNumericalFailure ||
                outcome.result.status == lp::SolveStatus::kIterationLimit)
        << lp::to_string(outcome.result.status);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverGrid,
    ::testing::Combine(::testing::Values<std::size_t>(8, 24),
                       ::testing::Values(0.0, 0.3, 0.6),
                       ::testing::Values(0.0, 0.5)));

// Determinism across the grid: identical seeds, identical outcomes.
class SolverDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(SolverDeterminism, BitIdenticalRuns) {
  Rng rng(3000 + GetParam());
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  generator.negative_fraction = 0.4;
  const auto problem = lp::random_feasible(generator, rng);
  XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.15);
  options.seed = 4000 + GetParam();
  const auto a = solve_xbar_pdip(problem, options);
  const auto b = solve_xbar_pdip(problem, options);
  EXPECT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.backend.xbar.write_pulses,
            b.stats.backend.xbar.write_pulses);
  if (a.result.optimal()) {
    ASSERT_EQ(a.result.x.size(), b.result.x.size());
    for (std::size_t j = 0; j < a.result.x.size(); ++j)
      EXPECT_DOUBLE_EQ(a.result.x[j], b.result.x[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDeterminism, ::testing::Range(0, 5));

}  // namespace
}  // namespace memlp::core
