// Tests for the analog I/O quantizer (§4.1: 8-bit voltage precision).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crossbar/quantizer.hpp"
#include "linalg/ops.hpp"

namespace memlp::xbar {
namespace {

TEST(Quantizer, ZeroBitsIsPassThrough) {
  const Quantizer q(0);
  EXPECT_FALSE(q.enabled());
  Vec v{0.123456789, -3.14159, 42.0};
  const Vec before = v;
  q.quantize(v);
  EXPECT_EQ(v, before);
}

TEST(Quantizer, RejectsAbsurdBitWidths) {
  EXPECT_THROW(Quantizer(25), ConfigError);
  EXPECT_NO_THROW(Quantizer(24));
}

TEST(Quantizer, EightBitErrorBound) {
  const Quantizer q(8);
  Rng rng(1);
  Vec v(100);
  for (double& x : v) x = rng.uniform(-5.0, 5.0);
  const double full_scale = norm_inf(v);
  const double step = full_scale / 127.0;
  const Vec quantized = q.quantized(v);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LE(std::abs(quantized[i] - v[i]), step / 2.0 + 1e-12);
}

TEST(Quantizer, PreservesFullScaleElement) {
  const Quantizer q(8);
  Vec v{1.0, -0.5, 0.25};
  q.quantize(v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);  // the max-abs element is a code point
}

TEST(Quantizer, IsIdempotent) {
  const Quantizer q(6);
  Rng rng(2);
  Vec v(50);
  for (double& x : v) x = rng.normal();
  const Vec once = q.quantized(v);
  const Vec twice = q.quantized(once);
  EXPECT_EQ(once, twice);
}

TEST(Quantizer, ZeroVectorUnchanged) {
  const Quantizer q(8);
  Vec v(5, 0.0);
  q.quantize(v);
  for (double x : v) EXPECT_EQ(x, 0.0);
}

TEST(Quantizer, SymmetricAroundZero) {
  const Quantizer q(8);
  Vec v{2.0, -2.0, 0.7, -0.7};
  q.quantize(v);
  EXPECT_DOUBLE_EQ(v[0], -v[1]);
  EXPECT_DOUBLE_EQ(v[2], -v[3]);
}

TEST(Quantizer, ScalarOverloadClampsToFullScale) {
  const Quantizer q(4);
  // A value above full scale clamps to the top code.
  EXPECT_DOUBLE_EQ(q.quantize(100.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantize(-100.0, 1.0), -1.0);
}

TEST(Quantizer, MoreBitsLessError) {
  Rng rng(3);
  Vec v(200);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  double error8 = 0.0, error12 = 0.0;
  const Vec q8 = Quantizer(8).quantized(v);
  const Vec q12 = Quantizer(12).quantized(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    error8 += std::abs(q8[i] - v[i]);
    error12 += std::abs(q12[i] - v[i]);
  }
  EXPECT_LT(error12, error8 / 8.0);
}

}  // namespace
}  // namespace memlp::xbar
