// Tests for the stationary iterative solvers (Gauss–Seidel, Jacobi).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

Matrix diagonally_dominant(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      m(i, j) = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(m(i, j));
    }
    m(i, i) = off_sum + rng.uniform(0.5, 1.5);
  }
  return m;
}

TEST(GaussSeidel, SolvesDominantSystem) {
  Rng rng(1);
  const Matrix a = diagonally_dominant(12, rng);
  Vec b(12);
  for (double& v : b) v = rng.normal();
  const auto result = gauss_seidel(a, b);
  EXPECT_TRUE(result.converged);
  const Vec expected = lu_solve(a, b);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_NEAR(result.x[i], expected[i], 1e-7);
}

TEST(Jacobi, SolvesDominantSystem) {
  Rng rng(2);
  const Matrix a = diagonally_dominant(10, rng);
  Vec b(10);
  for (double& v : b) v = rng.normal();
  const auto result = jacobi(a, b);
  EXPECT_TRUE(result.converged);
  const Vec expected = lu_solve(a, b);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(result.x[i], expected[i], 1e-7);
}

TEST(GaussSeidel, ConvergesFasterThanJacobi) {
  Rng rng(3);
  const Matrix a = diagonally_dominant(20, rng);
  Vec b(20);
  for (double& v : b) v = rng.normal();
  const auto gs = gauss_seidel(a, b);
  const auto jc = jacobi(a, b);
  ASSERT_TRUE(gs.converged);
  ASSERT_TRUE(jc.converged);
  EXPECT_LE(gs.sweeps, jc.sweeps);
}

TEST(GaussSeidel, ReportsNonConvergence) {
  // Strongly off-diagonal system: both stationary methods diverge.
  const Matrix a{{1, 10}, {10, 1}};
  IterativeOptions options;
  options.max_sweeps = 50;
  const auto result = gauss_seidel(a, Vec{1, 1}, options);
  EXPECT_FALSE(result.converged);
}

TEST(Iterative, RespectsSweepLimit) {
  Rng rng(4);
  const Matrix a = diagonally_dominant(8, rng);
  Vec b(8, 1.0);
  IterativeOptions options;
  options.max_sweeps = 2;
  options.tolerance = 1e-15;
  const auto result = jacobi(a, b, options);
  EXPECT_LE(result.sweeps, 2u);
}

TEST(Iterative, DominanceCheck) {
  Rng rng(5);
  EXPECT_TRUE(strictly_diagonally_dominant(diagonally_dominant(6, rng)));
  EXPECT_FALSE(strictly_diagonally_dominant(Matrix{{1, 2}, {0, 1}}));
  EXPECT_FALSE(strictly_diagonally_dominant(Matrix(2, 3)));
}

class IterativeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IterativeSweep, BothMethodsAgreeWithLu) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = diagonally_dominant(n, rng);
  Vec b(n);
  for (double& v : b) v = rng.uniform(-2.0, 2.0);
  const Vec expected = lu_solve(a, b);
  const auto gs = gauss_seidel(a, b);
  const auto jc = jacobi(a, b);
  ASSERT_TRUE(gs.converged);
  ASSERT_TRUE(jc.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(gs.x[i], expected[i], 1e-6);
    EXPECT_NEAR(jc.x[i], expected[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IterativeSweep,
                         ::testing::Values(2, 5, 10, 25, 50));

}  // namespace
}  // namespace memlp
