// Tests for the Yakopcic generalized memristor model ([23]), including the
// calibration checks backing the perf::HardwareModel constants.
#include <gtest/gtest.h>

#include <cmath>

#include "memristor/yakopcic.hpp"
#include "perf/hardware_model.hpp"

namespace memlp::mem {
namespace {

TEST(Yakopcic, ParameterValidation) {
  YakopcicParameters params;
  EXPECT_NO_THROW(params.validate());
  params.a1 = -1;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  params.x_off = 0.5;
  params.x_on = 0.4;
  EXPECT_THROW(params.validate(), ConfigError);
  params = {};
  params.eta = 0.5;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Yakopcic, SinhIvCurve) {
  const YakopcicDevice device(YakopcicParameters{}, 0.5);
  // Odd symmetry with equal branch factors.
  EXPECT_NEAR(device.current(0.5), -device.current(-0.5), 1e-15);
  // Superlinear: I(2V) > 2·I(V).
  EXPECT_GT(device.current(1.0), 2.0 * device.current(0.5));
  // Current scales with the state variable.
  const YakopcicDevice low(YakopcicParameters{}, 0.1);
  EXPECT_GT(device.current(0.5), low.current(0.5));
}

TEST(Yakopcic, SubThresholdReadsAreNonDestructive) {
  YakopcicDevice device(YakopcicParameters{}, 0.5);
  const double before = device.state();
  for (int i = 0; i < 1000; ++i) device.apply_pulse(0.9, 1e-6);
  EXPECT_DOUBLE_EQ(device.state(), before);
  for (int i = 0; i < 1000; ++i) device.apply_pulse(-0.9, 1e-6);
  EXPECT_DOUBLE_EQ(device.state(), before);
}

TEST(Yakopcic, SetAndResetMoveTheState) {
  YakopcicDevice device(YakopcicParameters{}, 0.5);
  device.apply_pulse(1.5, 1e-6);
  EXPECT_GT(device.state(), 0.5);
  const double high = device.state();
  device.apply_pulse(-1.5, 1e-6);
  EXPECT_LT(device.state(), high);
}

TEST(Yakopcic, StateStaysWithinWindow) {
  YakopcicParameters params;
  YakopcicDevice device(params, 0.5);
  for (int i = 0; i < 100000; ++i) device.apply_pulse(2.0, 1e-6);
  EXPECT_LE(device.state(), params.x_on);
  EXPECT_GT(device.state(), params.x_on - 0.05);  // approaches the bound
  for (int i = 0; i < 100000; ++i) device.apply_pulse(-2.0, 1e-6);
  EXPECT_GE(device.state(), params.x_off);
}

TEST(Yakopcic, WindowSlowsNearBoundaries) {
  YakopcicDevice near_top(YakopcicParameters{}, 0.95);
  YakopcicDevice middle(YakopcicParameters{}, 0.5);
  const double top_before = near_top.state();
  const double mid_before = middle.state();
  near_top.apply_pulse(1.5, 1e-7);
  middle.apply_pulse(1.5, 1e-7);
  EXPECT_LT(near_top.state() - top_before, middle.state() - mid_before);
}

TEST(Yakopcic, PulsesDissipateEnergy) {
  YakopcicDevice device(YakopcicParameters{}, 0.5);
  EXPECT_GT(device.apply_pulse(1.5, 1e-8), 0.0);
  EXPECT_GT(device.apply_pulse(-1.5, 1e-8), 0.0);
}

TEST(Yakopcic, ProgramToStateConverges) {
  YakopcicDevice device(YakopcicParameters{}, 0.1);
  const std::size_t pulses = device.program_to_state(0.7, 0.01);
  EXPECT_GT(pulses, 0u);
  EXPECT_NEAR(device.state(), 0.7, 0.011 * 0.7);
  // And back down.
  device.program_to_state(0.2, 0.01);
  EXPECT_NEAR(device.state(), 0.2, 0.011 * 0.2);
}

TEST(Yakopcic, ProgramRejectsOutOfWindowTarget) {
  YakopcicDevice device(YakopcicParameters{}, 0.1);
  EXPECT_THROW(device.program_to_state(1.5), ContractViolation);
}

// Calibration: the HardwareModel's per-write constants must be within the
// regime this device model implies — a program-and-verify write (a handful
// of short pulses) lands in the hundreds-of-nanoseconds to microsecond
// range, and per-pulse energy in the pJ–nJ range.
TEST(Yakopcic, HardwareModelConstantsAreInDeviceRegime) {
  YakopcicDevice device(YakopcicParameters{}, 0.3);
  const double pulse_width = 50e-9;
  const double energy = device.apply_pulse(1.6, pulse_width);
  const perf::HardwareCostConstants constants;
  // Per-pulse energy: the model constant bounds the device-level energy
  // (it also covers driver/verify overhead).
  EXPECT_GT(constants.write_pulse_j, energy * 0.001);
  // A write (overhead + pulses) takes longer than a single pulse.
  EXPECT_GT(constants.write_cell_s, pulse_width);
  // And the analog settle is faster than a write.
  EXPECT_LT(constants.settle_s, constants.write_cell_s);
}

}  // namespace
}  // namespace memlp::mem
