// Tests for the analog NoC topologies (Fig. 3).
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "noc/topology.hpp"

namespace memlp::noc {
namespace {

TEST(Hierarchical, SingleTileHasDepthZero) {
  const HierarchicalTopology topo(1);
  EXPECT_EQ(topo.depth(), 0u);
  EXPECT_EQ(topo.hops_to_root(0), 0u);
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_GE(topo.num_arbiters(), 1u);
}

TEST(Hierarchical, FourTilesShareOneArbiter) {
  const HierarchicalTopology topo(4);
  EXPECT_EQ(topo.depth(), 1u);
  EXPECT_EQ(topo.num_arbiters(), 1u);
  EXPECT_EQ(topo.hops(0, 3), 2u);  // up to the arbiter and down
  EXPECT_EQ(topo.hops_to_root(2), 1u);
}

TEST(Hierarchical, SixteenTilesFormTwoLevels) {
  const HierarchicalTopology topo(16);
  EXPECT_EQ(topo.depth(), 2u);
  EXPECT_EQ(topo.num_arbiters(), 1u + 4u);
  // Same quad: distance 2; different quads: distance 4.
  EXPECT_EQ(topo.hops(0, 1), 2u);
  EXPECT_EQ(topo.hops(0, 5), 4u);
}

TEST(Hierarchical, HopsAreSymmetricAndZeroOnSelf) {
  const HierarchicalTopology topo(13);
  for (std::size_t a = 0; a < 13; ++a) {
    EXPECT_EQ(topo.hops(a, a), 0u);
    for (std::size_t b = 0; b < 13; ++b)
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a));
  }
}

TEST(Mesh, SideIsCeilSqrt) {
  EXPECT_EQ(MeshTopology(1).side(), 1u);
  EXPECT_EQ(MeshTopology(4).side(), 2u);
  EXPECT_EQ(MeshTopology(5).side(), 3u);
  EXPECT_EQ(MeshTopology(16).side(), 4u);
}

TEST(Mesh, XyRoutingDistances) {
  const MeshTopology topo(9);  // 3x3
  EXPECT_EQ(topo.hops(0, 0), 0u);
  EXPECT_EQ(topo.hops(0, 2), 2u);  // same row
  EXPECT_EQ(topo.hops(0, 8), 4u);  // opposite corner
  EXPECT_EQ(topo.hops(4, 1), 1u);  // centre to edge
}

TEST(Mesh, HopsSatisfyTriangleInequality) {
  const MeshTopology topo(12);
  for (std::size_t a = 0; a < 12; ++a)
    for (std::size_t b = 0; b < 12; ++b)
      for (std::size_t c = 0; c < 12; ++c)
        EXPECT_LE(topo.hops(a, c), topo.hops(a, b) + topo.hops(b, c));
}

TEST(Mesh, OneRouterPerNode) {
  EXPECT_EQ(MeshTopology(7).num_arbiters(), 7u);
}

TEST(Topology, FactoryDispatches) {
  const auto hier = make_topology(TopologyKind::kHierarchical, 8);
  const auto mesh = make_topology(TopologyKind::kMesh, 8);
  EXPECT_EQ(hier->kind(), TopologyKind::kHierarchical);
  EXPECT_EQ(mesh->kind(), TopologyKind::kMesh);
  EXPECT_EQ(hier->num_tiles(), 8u);
  EXPECT_EQ(mesh->num_tiles(), 8u);
}

TEST(Topology, OutOfRangeTileThrows) {
  const MeshTopology topo(4);
  EXPECT_THROW((void)topo.hops(0, 4), ContractViolation);
  const HierarchicalTopology hier(4);
  EXPECT_THROW((void)hier.hops_to_root(4), ContractViolation);
}

// The hierarchy pays logarithmic distance, the mesh pays sqrt: for large
// tile counts the hierarchy's worst-case hop count is smaller.
TEST(Topology, HierarchyScalesBetterThanMeshWorstCase) {
  const std::size_t tiles = 64;
  const HierarchicalTopology hier(tiles);
  const MeshTopology mesh(tiles);
  std::size_t worst_hier = 0, worst_mesh = 0;
  for (std::size_t a = 0; a < tiles; ++a)
    for (std::size_t b = 0; b < tiles; ++b) {
      worst_hier = std::max(worst_hier, hier.hops(a, b));
      worst_mesh = std::max(worst_mesh, mesh.hops(a, b));
    }
  EXPECT_LT(worst_hier, worst_mesh);
}

}  // namespace
}  // namespace memlp::noc
