// Run-wide telemetry suite: trace-context propagation (obs/context.hpp),
// the flight recorder (obs/flight_recorder.hpp), the health monitor
// (obs/health.hpp), and the Prometheus exposition (obs/exposition.hpp,
// obs/telemetry.hpp).
//
// The load-bearing invariants:
//   * sinks stamp trace_id/solve_id ONLY when a context is active — with no
//     context an event serializes exactly as before PR 9, which is what
//     keeps test_engine's golden traces bit-exact;
//   * a mixed engine::solve_batch is filterable by trace_id into per-solve
//     event streams that are bit-identical at threads=1 and threads=4;
//   * a solver that ends in failure dumps the flight recorder without any
//     tracing having been armed in advance.
//
// The dump tests consume flight_dump_on_failure()'s once-per-process latch;
// under ctest each TEST runs in its own process (gtest_discover_tests), so
// they don't contend.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/par.hpp"
#include "common/rng.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "lp/generator.hpp"
#include "lp/problem.hpp"
#include "memristor/variation.hpp"
#include "obs/context.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace memlp {
namespace {

lp::LinearProgram test_problem(std::size_t constraints, std::uint64_t seed) {
  lp::GeneratorOptions gen;
  gen.constraints = constraints;
  Rng rng(seed);
  return lp::random_feasible(gen, rng);
}

// --- context propagation -----------------------------------------------------

TEST(SolveContext, MintedIdsAreUniqueAndNeverZero) {
  const std::uint64_t first = obs::mint_trace_ids();
  const std::uint64_t second = obs::mint_trace_ids();
  EXPECT_NE(first, 0u);
  EXPECT_GT(second, first);
  // A block reservation keeps later mints out of the block.
  const std::uint64_t base = obs::mint_trace_ids(5);
  EXPECT_GE(obs::mint_trace_ids(), base + 5);
}

TEST(SolveContext, ScopedInstallRestoresOuterContext) {
  EXPECT_EQ(obs::current_solve_context(), nullptr);
  {
    obs::SolveContext outer;
    outer.trace_id = obs::mint_trace_ids();
    obs::ScopedSolveContext outer_scope(std::move(outer));
    const std::uint64_t outer_id = outer_scope.context().trace_id;
    ASSERT_NE(obs::current_solve_context(), nullptr);
    EXPECT_EQ(obs::current_solve_context()->trace_id, outer_id);
    {
      obs::SolveContext inner;
      inner.trace_id = obs::mint_trace_ids();
      inner.tenant = "inner";
      const obs::ScopedSolveContext inner_scope(std::move(inner));
      EXPECT_EQ(obs::current_solve_context()->tenant, "inner");
      EXPECT_NE(obs::current_solve_context()->trace_id, outer_id);
    }
    EXPECT_EQ(obs::current_solve_context()->trace_id, outer_id);
  }
  EXPECT_EQ(obs::current_solve_context(), nullptr);
}

TEST(SolveContext, AnnotateStampsOnlyUnderActiveContext) {
  obs::Event bare("iteration");
  bare.with("iter", 1);
  const std::string before = bare.to_json();
  obs::annotate_context(bare);
  EXPECT_EQ(bare.to_json(), before);  // no context → byte-identical.

  obs::SolveContext context;
  context.trace_id = obs::mint_trace_ids();
  context.solve_id = 3;
  context.tenant = "team-a";
  obs::ScopedSolveContext scope(std::move(context));
  obs::Event stamped("iteration");
  stamped.with("iter", 1);
  obs::annotate_context(stamped);
  ASSERT_NE(stamped.find("trace_id"), nullptr);
  EXPECT_EQ(stamped.number("solve_id"), 3.0);
  ASSERT_NE(stamped.find("tenant"), nullptr);
}

TEST(SolveContext, PooledRegionInheritsLaunchingThreadContext) {
  obs::SolveContext context;
  context.trace_id = obs::mint_trace_ids();
  const obs::ScopedSolveContext scope(std::move(context));
  const std::uint64_t expected = scope.context().trace_id;
  std::vector<std::uint64_t> seen(16, 0);
  par::parallel_for(
      seen.size(),
      [&](std::size_t i) {
        const obs::SolveContext* active = obs::current_solve_context();
        seen[i] = active == nullptr ? 0 : active->trace_id;
      },
      /*threads=*/4);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], expected) << "chunk " << i;
}

TEST(TraceSinks, StampContextOnlyWhenActive) {
  obs::MemoryTraceSink sink;
  obs::Event plain("iteration");
  plain.with("iter", 1);
  sink.emit(plain);  // no context: the stored event must be untouched —
                     // this is the golden-trace regression guard.
  {
    obs::SolveContext context;
    context.trace_id = obs::mint_trace_ids();
    context.solve_id = 7;
    const obs::ScopedSolveContext scope(std::move(context));
    obs::Event traced("iteration");
    traced.with("iter", 2);
    sink.emit(traced);
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].find("trace_id"), nullptr);
  EXPECT_EQ(events[0].to_json(), plain.to_json());
  ASSERT_NE(events[1].find("trace_id"), nullptr);
  EXPECT_EQ(events[1].number("solve_id"), 7.0);
}

// --- batch trace filtering ---------------------------------------------------

// Rewrites the absolute trace id in a serialized event to its offset inside
// the batch's contiguous block, so runs (which mint different blocks) can be
// compared bit-for-bit.
std::string normalize_trace_id(std::string line, std::uint64_t base) {
  const std::string key = "\"trace_id\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return line;
  std::size_t begin = pos + key.size();
  std::size_t end = begin;
  while (end < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[end])) != 0)
    ++end;
  const std::uint64_t id = std::stoull(line.substr(begin, end - begin));
  return line.substr(0, begin) + std::to_string(id - base) + line.substr(end);
}

// Drops the one wall-clock field events carry: every other field is
// deterministic for a pinned seed, wall_seconds is measured.
std::string strip_wall_seconds(std::string line) {
  const std::string key = ",\"wall_seconds\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string::npos) return line;
  std::size_t end = pos + key.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(0, pos) + line.substr(end);
}

// The per-solve event streams of one batch run: block offset → serialized
// events in emission order (a solve's events are emitted by one worker, so
// the per-trace_id subsequence is ordered even when the run interleaves).
std::map<std::uint64_t, std::vector<std::string>> solve_streams(
    const obs::MemoryTraceSink& sink) {
  const auto events = sink.events();
  std::uint64_t base = ~std::uint64_t{0};
  for (const auto& event : events)
    if (event.find("trace_id") != nullptr)
      base = std::min(base,
                      static_cast<std::uint64_t>(event.number("trace_id")));
  std::map<std::uint64_t, std::vector<std::string>> streams;
  for (const auto& event : events) {
    if (event.find("trace_id") == nullptr) continue;
    const auto id = static_cast<std::uint64_t>(event.number("trace_id"));
    streams[id - base].push_back(
        strip_wall_seconds(normalize_trace_id(event.to_json(), base)));
  }
  return streams;
}

TEST(EngineBatch, TraceFilterByIdIsThreadCountInvariant) {
  std::vector<lp::LinearProgram> problems;
  for (std::size_t i = 0; i < 8; ++i)
    problems.push_back(test_problem(6, 900 + i));
  core::BackendOptions hardware;
  hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  const char* const kinds[] = {"simplex", "pdip", "xbar", "ls"};

  const auto run = [&](std::size_t threads, obs::MemoryTraceSink& sink) {
    std::vector<engine::BatchItem> items(problems.size());
    for (std::size_t i = 0; i < problems.size(); ++i) {
      items[i].problem = &problems[i];
      items[i].request.solver = kinds[i % 4];
      items[i].request.hardware = hardware;
      items[i].request.seed = 4242 + i;
      items[i].request.tenant = i % 2 == 0 ? "even" : "odd";
      items[i].request.pdip.trace = &sink;
    }
    return engine::solve_batch(items, threads);
  };

  obs::MemoryTraceSink serial_sink;
  obs::MemoryTraceSink parallel_sink;
  run(/*threads=*/1, serial_sink);
  run(/*threads=*/4, parallel_sink);

  const auto serial = solve_streams(serial_sink);
  const auto parallel = solve_streams(parallel_sink);
  ASSERT_EQ(serial.size(), problems.size());
  ASSERT_EQ(parallel.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto s = serial.find(i);
    const auto p = parallel.find(i);
    ASSERT_NE(s, serial.end()) << "solve " << i;
    ASSERT_NE(p, parallel.end()) << "solve " << i;
    ASSERT_EQ(s->second.size(), p->second.size()) << "solve " << i;
    for (std::size_t r = 0; r < s->second.size(); ++r)
      EXPECT_EQ(s->second[r], p->second[r]) << "solve " << i << " record "
                                            << r;
    // The block offset doubles as the solve_id (item index).
    EXPECT_NE(s->second[0].find("\"solve_id\":" + std::to_string(i)),
              std::string::npos)
        << s->second[0];
  }
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestRecords) {
  obs::FlightRecorder recorder(/*capacity_per_thread=*/4);
  for (int i = 0; i < 10; ++i)
    recorder.record(obs::FlightEventKind::kMark, "wrap", i);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.capacity_per_thread(), 4u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 4u);  // oldest six overwritten.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, 6.0 + static_cast<double>(i));
    EXPECT_STREQ(records[i].tag, "wrap");
  }
  recorder.reset();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, RecordsStampActiveContextAndTruncateTags) {
  obs::FlightRecorder recorder;
  obs::SolveContext context;
  context.trace_id = obs::mint_trace_ids();
  context.solve_id = 5;
  obs::ScopedSolveContext scope(std::move(context));
  recorder.record(obs::FlightEventKind::kIteration,
                  "a-tag-much-longer-than-twenty-two-chars", 1.0, 2.0, 3.0);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, scope.context().trace_id);
  EXPECT_EQ(records[0].solve_id, 5u);
  EXPECT_EQ(std::string(records[0].tag).size(), 22u);  // NUL retained.
}

TEST(FlightRecorder, DumpWritesOneJsonlLinePerRecord) {
  obs::FlightRecorder recorder;
  recorder.record(obs::FlightEventKind::kPhaseEnter, "iterations");
  recorder.record(obs::FlightEventKind::kIteration, "xbar", 1.0, 0.5, 0.1);
  recorder.record(obs::FlightEventKind::kSolveEnd, "xbar", 12.0, 1.0);
  const std::string path =
      ::testing::TempDir() + "telemetry_flight_dump.jsonl";
  ASSERT_TRUE(recorder.dump_to(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& line : lines) EXPECT_EQ(line.front(), '{') << line;
  EXPECT_NE(lines[1].find("\"kind\":\"iteration\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"solve_end\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SolverFailureDumpsWithoutArmedTracing) {
  const std::string path = ::testing::TempDir() + "telemetry_failure.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(::setenv("MEMLP_FLIGHT_DUMP", path.c_str(), 1), 0);
  // Starve the analog solver of iterations: every attempt hits the
  // iteration limit, the final status is a failure, and the engine dumps
  // the recorder — no --trace, no sink, nothing armed in advance.
  engine::SolveRequest request;
  request.solver = "xbar";
  request.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  request.pdip.max_iterations = 2;
  const auto problem = test_problem(8, 1234);
  const auto report = engine::solve(problem, request);
  EXPECT_FALSE(report.result.optimal());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << path;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_FALSE(contents.empty());
  EXPECT_NE(contents.find("solver_failure"), std::string::npos);
  EXPECT_NE(contents.find("\"kind\":\"iteration\""), std::string::npos);
  ::unsetenv("MEMLP_FLIGHT_DUMP");
  std::remove(path.c_str());
}

std::atomic<int> g_contract_hook_hits{0};

TEST(ContractHook, FailureNotifiesInstalledHook) {
  detail::set_contract_failure_hook(+[]() noexcept { ++g_contract_hook_hits; });
  EXPECT_THROW(MEMLP_EXPECT_MSG(false, "forced for telemetry test"),
               ContractViolation);
  EXPECT_EQ(g_contract_hook_hits.load(), 1);
  detail::set_contract_failure_hook(nullptr);
  EXPECT_THROW(MEMLP_EXPECT_MSG(false, "hook removed"), ContractViolation);
  EXPECT_EQ(g_contract_hook_hits.load(), 1);
}

// --- health monitor ----------------------------------------------------------

TEST(HealthMonitor, ReportFansOutToRollupMetricsAndSink) {
  obs::HealthMonitor monitor;
  obs::MemoryTraceSink sink;
  const std::uint64_t before =
      obs::MetricsRegistry::global().counter("health.xbar.stall").value();
  monitor.report(obs::Anomaly::kStall, "xbar", &sink, 3.0, 17.0);
  monitor.report(obs::Anomaly::kStall, "xbar");
  monitor.report(obs::Anomaly::kDivergence, "pdip");
  EXPECT_EQ(monitor.total(), 3u);
  const auto rollup = monitor.rollup();
  EXPECT_EQ(rollup.at("xbar").at("stall"), 2u);
  EXPECT_EQ(rollup.at("pdip").at("divergence"), 1u);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("health.xbar.stall").value(),
      before + 2);
  const auto events = sink.events_of("anomaly");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].number("value"), 3.0);
  EXPECT_EQ(events[0].number("iteration"), 17.0);
  monitor.reset();
  EXPECT_EQ(monitor.total(), 0u);
}

TEST(HealthMonitor, AnomalyNamesAreStable) {
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kStall), "stall");
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kDivergence), "divergence");
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kWildJump), "wild_jump");
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kMuOscillation),
               "mu_oscillation");
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kSettleCacheThrash),
               "settle_cache_thrash");
  EXPECT_STREQ(obs::anomaly_name(obs::Anomaly::kRetryStorm), "retry_storm");
}

// --- exposition --------------------------------------------------------------

TEST(Exposition, MetricNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(obs::prometheus_metric_name("xbar.solve_seconds"),
            "memlp_xbar_solve_seconds");
  EXPECT_EQ(obs::prometheus_metric_name("a-b c/d"), "memlp_a_b_c_d");
}

TEST(Exposition, RendersCountersGaugesAndSummaries) {
  obs::MetricsRegistry registry;
  registry.counter("demo.requests").add(3);
  registry.gauge("demo.load").set(1.5);
  for (int i = 1; i <= 100; ++i)
    registry.histogram("demo.seconds").observe(static_cast<double>(i));
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("# TYPE memlp_demo_requests counter\n"
                      "memlp_demo_requests 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE memlp_demo_load gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE memlp_demo_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("memlp_demo_seconds{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("memlp_demo_seconds{quantile=\"0.95\"} "),
            std::string::npos);
  EXPECT_NE(text.find("memlp_demo_seconds{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("memlp_demo_seconds_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("memlp_demo_seconds_max 100\n"), std::string::npos);
}

TEST(Telemetry, WritesSnapshotWithUptimeGauge) {
  obs::MetricsRegistry::global().counter("telemetry.test_marker").add();
  auto& telemetry = obs::Telemetry::global();
  const std::string path = ::testing::TempDir() + "telemetry_snapshot.prom";
  ASSERT_TRUE(telemetry.write_metrics(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("memlp_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(contents.find("memlp_telemetry_test_marker 1"),
            std::string::npos);
  std::remove(path.c_str());

  // The configured-destination path routes through the same writer.
  const std::string previous = telemetry.metrics_out();
  telemetry.set_metrics_out(path);
  EXPECT_EQ(telemetry.write_metrics_if_configured(), path);
  telemetry.set_metrics_out("");
  EXPECT_EQ(telemetry.write_metrics_if_configured(), "");
  telemetry.set_metrics_out(previous);
  std::remove(path.c_str());
}

TEST(EngineBatch, RecordsWaitAndExecHistograms) {
  std::vector<lp::LinearProgram> problems;
  for (std::size_t i = 0; i < 4; ++i)
    problems.push_back(test_problem(6, 300 + i));
  std::vector<engine::BatchItem> items(problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    items[i].problem = &problems[i];
    items[i].request.solver = "simplex";
  }
  const auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.histogram_values();
  const auto count_of = [](const std::map<std::string, obs::HistogramStats>&
                               values,
                           const char* name) -> std::uint64_t {
    const auto it = values.find(name);
    return it == values.end() ? 0 : it->second.count;
  };
  engine::solve_batch(items, /*threads=*/2);
  const auto after = registry.histogram_values();
  EXPECT_EQ(count_of(after, "simplex.batch_wait_seconds"),
            count_of(before, "simplex.batch_wait_seconds") + items.size());
  EXPECT_EQ(count_of(after, "simplex.batch_exec_seconds"),
            count_of(before, "simplex.batch_exec_seconds") + items.size());
}

}  // namespace
}  // namespace memlp
