* Free-format MPS exercising OBJSENSE, RANGES, and BOUNDS:
*   max x1 + 2 x2  s.t.  x1 + x2 in [2, 6],  x2 in [1, 3],
*                        x1 <= 4,  x2 >= 0.5
* optimum 9 at (3, 3).
NAME RANGED
OBJSENSE
 MAX
ROWS
 G GROW
 E EROW
 N PROFIT
COLUMNS
 X1 PROFIT 1.0 GROW 1.0
 X2 PROFIT 2.0 GROW 1.0
 X2 EROW 1.0
RHS
 RHS GROW 2.0 EROW 1.0
RANGES
 RNG GROW 4.0 EROW 2.0
BOUNDS
 UP BND X1 4.0
 LO BND X2 0.5
 PL BND X1
ENDATA
