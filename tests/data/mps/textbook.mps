* Netlib-style fixed-format MPS of the textbook LP (tests/data/textbook.lp):
*   max 3 x1 + 5 x2  s.t.  x1 <= 4, 2 x2 <= 12, 3 x1 + 2 x2 <= 18
* written as the default MINIMIZE of -3 x1 - 5 x2 (optimum -36 at (2, 6)).
NAME          TEXTBOOK
ROWS
 N  COST
 L  LIM1
 L  LIM2
 L  LIM3
COLUMNS
    X1        COST         -3.0   LIM1          1.0
    X1        LIM3          3.0
    X2        COST         -5.0   LIM2          2.0
    X2        LIM3          2.0
RHS
    RHS       LIM1          4.0   LIM2         12.0
    RHS       LIM3         18.0
ENDATA
