// Fixture: R1 parallelism-discipline — raw thread spawn in library code.
#include <thread>

void spawn() {
  std::thread worker([] {});  // line 5: R1
  worker.join();
}
