// Fixture: R6 header-hygiene — header without #pragma once.
inline int answer() { return 42; }
