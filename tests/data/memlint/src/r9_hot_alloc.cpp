// R9: hot-annotated kernels must stay allocation-free, transitively.
namespace memlp {
// memlint:hot — fixture settle kernel.
double fixture_settle(int n) {
  double* scratch = new double[8];
  double acc = fixture_stage_sum(n) + scratch[0];
  delete[] scratch;
  return acc;
}
}  // namespace memlp
