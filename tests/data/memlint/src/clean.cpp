// Fixture: clean — constructs that look close to violations but are fine.
#include <mutex>

extern std::mutex& shared_gate();  // memlint:allow(R1): declaration helper

// A comment mentioning std::thread, rand() and std::cout must not count.
int quiet(double energy_j) {
  static_assert(sizeof(double) == 8, "IEEE754 assumed");
  const char* label = "std::cout << rand() << std::thread";  // stripped
  std::lock_guard<std::mutex> lock(shared_gate());  // template arg: fine
  const double scaled_energy_j = static_cast<double>(energy_j) * 2.0;
  /* block comment: printf("%d", 1); assert(false); std::mt19937 gen; */
  return label != nullptr && scaled_energy_j >= 0.0 ? 1 : 0;
}
