// Fixture: src/obs/ is the sink layer — the file IO that R3 flags anywhere
// else under src/ (flight-recorder dumps, Prometheus exposition writes) is
// exempt here. Must lint clean.
#include <cstdio>
#include <mutex>
#include <string>

namespace memlp::obs {

class DumpSink {
 public:
  bool dump(const std::string& path, const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    std::fputs(line.c_str(), file);
    std::fclose(file);
    return true;
  }

 private:
  std::mutex mutex_;  // memlint:allow(R1): sink-internal serialization lock
};

}  // namespace memlp::obs
