// R8 clean: per-index slot writes and local accumulation are sanctioned.
namespace memlp {
void fixture_fill(int n, double* out, Grid& m, Slot* slots) {
  par::parallel_for(n, [&](int i) {
    double local = 0.0;
    local += i;
    out[i] = local;
    m(i, 0) = local * 2.0;
    ++slots[i].count;
  });
}
}  // namespace memlp
