// Fixture: R4 error-discipline — bare assert and untyped runtime_error.
#include <cassert>
#include <stdexcept>

void check(int rows) {
  assert(rows > 0);                                  // line 6: R4
  if (rows > 4096)
    throw std::runtime_error("matrix too large");    // line 8: R4
}
