// Fixture: R2 rng-discipline — ad-hoc engine seeding and libc rand().
#include <cstdlib>
#include <random>

int draw() {
  std::mt19937 engine(std::random_device{}());  // line 6: R2 (twice)
  return static_cast<int>(engine()) + rand();   // line 7: R2
}
