// R7 near-miss fixture: src/core/ itself may include the engine internals.
#include "core/engine.hpp"
#include "core/newton_xbar.hpp"

int engine_internal_ok() { return 0; }
