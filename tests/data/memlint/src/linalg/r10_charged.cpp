// R10 clean: the nested-loop kernel charges through a callee.
namespace memlp {
void fixture_charge(unsigned long long flops) {
  obs::CostLedger::charge_active({.flops = flops});
}
double fixture_gemm_probe(const double* a, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) sum += a[i * n + j];
  fixture_charge(2ull * n * n);
  return sum;
}
}  // namespace memlp
