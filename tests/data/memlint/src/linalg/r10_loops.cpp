// R10: nested loops in src/linalg must charge CostLedger flops.
namespace memlp {
double fixture_frob(const double* a, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) sum += a[i * n + j];
  return sum;
}
double fixture_trace(const double* a, int n) {  // memlint:allow(R10): fixture shows a reviewed exemption
  double s = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) s += (i == j) ? a[i * n + j] : 0.0;
  return s;
}
}  // namespace memlp
