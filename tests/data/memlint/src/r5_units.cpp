// Fixture: R5 unit-suffix — physical quantity declared without a unit.
double settle_cost() {
  double energy = 0.0;       // line 3: R5
  double latency_s = 1e-7;   // suffixed: clean
  energy += latency_s * 35.0;
  double wall = energy;        // line 6: R5 (extended quantity word)
  double wall_seconds = wall;  // spelled-out suffix: clean
  return energy + wall_seconds;
}
