// Fixture: suppression — each violation carries a memlint:allow() tag, so
// the file must scan clean.
#include <iostream>
#include <mutex>

void tagged(int value) {
  static std::mutex gate;  // memlint:allow(R1): fixture-local lock
  std::cout << value;      // memlint:allow(R3, R4)
  double power = 1.0;      // memlint:allow(unit-suffix): name form accepted
  std::cerr << power;      // memlint:allow(io-discipline)
}
