// R9 clean: a hot kernel whose whole closure is allocation-free.
namespace memlp {
double fixture_axpy(double a, double x, double y) { return a * x + y; }
// memlint:hot — fixture readout kernel.
double fixture_readout(int n, const double* data) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc = fixture_axpy(2.0, data[i], acc);
  return acc;
}
double fixture_cold_build(int n) {
  std::vector<double> v(n, 0.0);
  return v[0];
}
}  // namespace memlp
