// R9 helper: called from the hot fixture kernel in r9_hot_alloc.cpp.
namespace memlp {
double fixture_stage_sum(int n) {
  std::vector<double> staging;
  staging.push_back(static_cast<double>(n));
  return staging[0];
}
}  // namespace memlp
