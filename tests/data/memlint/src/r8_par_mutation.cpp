// R8: lambdas handed to memlp::par must not mutate by-ref captures.
namespace memlp {
void fixture_accumulate(int n) {
  double sum = 0.0;
  int flips = 0;
  par::parallel_for(n, [&](int i) {
    sum += static_cast<double>(i);
    ++flips;
  });
  const auto body = [&sum](int i) { sum -= i; };
  par::parallel_for_ranges(n, 8, body);
}
}  // namespace memlp
