// R7 fixture: library code outside src/core/ reaching into the engine's
// internals. A doc-comment mention of core/engine.hpp alone stays clean.
#include "core/engine.hpp"
#include "core/newton_software.hpp"

int r7_engine_include() { return 0; }
