// memlint:allow-file(R3): console noise is this fixture's subject.
namespace memlp {
void fixture_mixed() {
  std::cout << "quiet";
  std::thread t;
}
}  // namespace memlp
