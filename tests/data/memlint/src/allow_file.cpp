// memlint:allow-file(R1, io-discipline): fixture-wide exemption, id + slug.
namespace memlp {
void fixture_noisy() {
  std::thread t;
  std::cout << "boo";
}
}  // namespace memlp
