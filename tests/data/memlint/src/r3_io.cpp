// Fixture: R3 io-discipline — console output from library code.
#include <cstdio>
#include <iostream>

void chatter(int iterations) {
  std::cout << "iterations: " << iterations << '\n';  // line 6: R3
  printf("%d\n", iterations);                         // line 7: R3
}
