// Stripper regressions: digit separators and raw strings.
namespace memlp {
int fixture_work(int n) { return n; }
double fixture_use() {
  int burst = fixture_work(10'000); double energy = 1.0;
  const char* msg = R"(a "std::thread" mention, safely raw)";
  return energy + static_cast<double>(burst) + (msg ? 1.0 : 0.0);
}
}  // namespace memlp
