// Fixture: scope — tools/ (like bench/ and examples/) is exempt from the
// library-only rules R3 and R4, so this file must scan clean.
#include <cassert>
#include <iostream>
#include <stdexcept>

int main() {
  assert(true);
  std::cout << "tools may print\n";
  try {
    throw std::runtime_error("tools may throw untyped errors");
  } catch (const std::exception&) {
  }
  return 0;
}
