// Golden-trace parity suite for the shared PDIP iteration engine.
//
// Each fixture under tests/data/engine/ is the JSONL `iteration` event
// stream a solver emitted BEFORE the loop was extracted into
// core::PdipEngine (PR 5); the wrappers must keep reproducing every record
// bit-for-bit — same field set, same values, same order. Event::to_json()
// carries no seq/ts, so the serialized lines are stable across runs and
// machines for a pinned seed.
//
// Regenerate (ONLY when a deliberate behavior change invalidates them):
//   MEMLP_REGEN_GOLDEN=1 ./test_engine --gtest_filter='EngineGolden.*'
// then inspect the tests/data/engine/ diff like any other golden change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "engine/batch.hpp"
#include "engine/registry.hpp"
#include "lp/generator.hpp"
#include "lp/problem.hpp"
#include "memristor/variation.hpp"
#include "obs/trace.hpp"

namespace memlp {
namespace {

lp::LinearProgram golden_problem(std::size_t constraints, std::uint64_t seed,
                                 bool feasible = true) {
  lp::GeneratorOptions gen;
  gen.constraints = constraints;
  Rng rng(seed);
  return feasible ? lp::random_feasible(gen, rng)
                  : lp::random_infeasible(gen, rng);
}

std::vector<std::string> iteration_lines(const obs::MemoryTraceSink& sink) {
  std::vector<std::string> lines;
  for (const auto& event : sink.events_of("iteration"))
    lines.push_back(event.to_json());
  return lines;
}

// Compares against (or, under MEMLP_REGEN_GOLDEN, rewrites) the fixture.
void check_golden(const std::string& name,
                  const std::vector<std::string>& lines) {
  ASSERT_FALSE(lines.empty()) << name << ": solver emitted no iterations";
  const std::string path =
      std::string(MEMLP_ENGINE_FIXTURES) + "/" + name + ".jsonl";
  if (std::getenv("MEMLP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& line : lines) out << line << "\n";
    GTEST_SKIP() << "regenerated " << path << " (" << lines.size()
                 << " records)";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with MEMLP_REGEN_GOLDEN=1 to create)";
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);) expected.push_back(line);
  ASSERT_EQ(lines.size(), expected.size()) << name << ": record count drifted";
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(lines[i], expected[i]) << name << " record " << i;
}

core::BackendOptions golden_hardware() {
  core::BackendOptions hardware;
  hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  return hardware;
}

// --- software pdip ----------------------------------------------------------

TEST(EngineGolden, PdipPlain) {
  const auto problem = golden_problem(10, 91);
  obs::MemoryTraceSink sink;
  core::PdipOptions options;
  options.trace = &sink;
  const auto result = core::solve_pdip(problem, options);
  EXPECT_EQ(result.status, lp::SolveStatus::kOptimal);
  check_golden("pdip_plain", iteration_lines(sink));
}

TEST(EngineGolden, PdipPredictorCorrector) {
  const auto problem = golden_problem(10, 91);
  obs::MemoryTraceSink sink;
  core::PdipOptions options;
  options.predictor_corrector = true;
  options.trace = &sink;
  const auto result = core::solve_pdip(problem, options);
  EXPECT_EQ(result.status, lp::SolveStatus::kOptimal);
  check_golden("pdip_pc", iteration_lines(sink));
}

TEST(EngineGolden, PdipNormalEquations) {
  const auto problem = golden_problem(12, 95);
  obs::MemoryTraceSink sink;
  core::PdipOptions options;
  options.newton = core::NewtonFactorization::kNormalEquations;
  options.predictor_corrector = true;
  options.trace = &sink;
  const auto result = core::solve_pdip(problem, options);
  EXPECT_EQ(result.status, lp::SolveStatus::kOptimal);
  check_golden("pdip_normal_pc", iteration_lines(sink));
}

// Pins the divergence path: the final record (emitted before the break)
// must survive the refactor too.
TEST(EngineGolden, PdipInfeasible) {
  const auto problem = golden_problem(12, 97, /*feasible=*/false);
  obs::MemoryTraceSink sink;
  core::PdipOptions options;
  options.trace = &sink;
  const auto result = core::solve_pdip(problem, options);
  EXPECT_EQ(result.status, lp::SolveStatus::kInfeasible);
  check_golden("pdip_infeasible", iteration_lines(sink));
}

// --- crossbar pdip ----------------------------------------------------------

TEST(EngineGolden, XbarPlain) {
  const auto problem = golden_problem(8, 92);
  obs::MemoryTraceSink sink;
  core::XbarPdipOptions options;
  options.hardware = golden_hardware();
  options.seed = 4242;
  options.pdip.trace = &sink;
  const auto outcome = core::solve_xbar_pdip(problem, options);
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  check_golden("xbar_plain", iteration_lines(sink));
}

TEST(EngineGolden, XbarPredictorCorrector) {
  const auto problem = golden_problem(8, 92);
  obs::MemoryTraceSink sink;
  core::XbarPdipOptions options;
  options.hardware = golden_hardware();
  options.seed = 4242;
  options.pdip.predictor_corrector = true;
  options.pdip.trace = &sink;
  const auto outcome = core::solve_xbar_pdip(problem, options);
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  check_golden("xbar_pc", iteration_lines(sink));
}

// --- large-scale (two-system) pdip ------------------------------------------

TEST(EngineGolden, LsSchurStable) {
  const auto problem = golden_problem(8, 93);
  obs::MemoryTraceSink sink;
  core::LsPdipOptions options;
  options.hardware = golden_hardware();
  options.seed = 4242;
  options.pdip.trace = &sink;
  const auto outcome = core::solve_ls_pdip(problem, options);
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  check_golden("ls_schur_stable", iteration_lines(sink));
}

TEST(EngineGolden, LsM2Recovery) {
  const auto problem = golden_problem(8, 93);
  obs::MemoryTraceSink sink;
  core::LsPdipOptions options;
  options.hardware = golden_hardware();
  options.seed = 4242;
  options.recovery = core::RecoveryMode::kM2Diagonal;
  options.pdip.trace = &sink;
  const auto outcome = core::solve_ls_pdip(problem, options);
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  check_golden("ls_m2_recovery", iteration_lines(sink));
}

// --- solver registry ---------------------------------------------------------

void expect_same_solve(const lp::SolveResult& a, const lp::SolveResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.objective, b.objective);  // bitwise: same code path, same RNG.
  EXPECT_EQ(a.x, b.x);
}

TEST(SolverRegistry, BuiltInsRegisteredAndSorted) {
  auto& registry = engine::SolverRegistry::global();
  for (const char* name : {"simplex", "pdip", "xbar", "ls"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_TRUE(registry.find(name).has_value()) << name;
  }
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_FALSE(registry.contains("no-such-solver"));
  EXPECT_FALSE(registry.find("no-such-solver").has_value());
}

TEST(SolverRegistry, UnknownSolverIsAContractViolation) {
  const auto problem = golden_problem(6, 17);
  engine::SolveRequest request;
  request.solver = "no-such-solver";
  EXPECT_THROW(engine::solve(problem, request), ContractViolation);
}

TEST(SolverRegistry, EverySolverMatchesItsDirectEntryPoint) {
  const auto problem = golden_problem(8, 29);
  engine::SolveRequest request;
  request.hardware = golden_hardware();
  request.seed = 4242;

  request.solver = "simplex";
  expect_same_solve(engine::solve(problem, request).result,
                    solvers::solve_simplex(problem, {}));

  request.solver = "pdip";
  expect_same_solve(engine::solve(problem, request).result,
                    core::solve_pdip(problem, {}));

  core::XbarPdipOptions xbar;
  xbar.hardware = golden_hardware();
  xbar.seed = 4242;
  request.solver = "xbar";
  const auto xbar_report = engine::solve(problem, request);
  expect_same_solve(xbar_report.result,
                    core::solve_xbar_pdip(problem, xbar).result);
  EXPECT_TRUE(xbar_report.has_hardware_stats);
  EXPECT_GT(xbar_report.stats.system_dim, 0u);

  core::LsPdipOptions ls;
  ls.hardware = golden_hardware();
  ls.seed = 4242;
  request.solver = "ls";
  const auto ls_report = engine::solve(problem, request);
  expect_same_solve(ls_report.result, core::solve_ls_pdip(problem, ls).result);
  EXPECT_TRUE(ls_report.has_hardware_stats);
}

TEST(SolverRegistry, PerSolverOverridesAreUsedVerbatim) {
  engine::SolveRequest request;
  request.seed = 7;  // shared fields must lose to the explicit override.
  core::XbarPdipOptions xbar;
  xbar.seed = 99;
  xbar.max_retries = 5;
  request.xbar = xbar;
  EXPECT_EQ(request.xbar_options().seed, 99u);
  EXPECT_EQ(request.xbar_options().max_retries, 5u);
  // Without an override the shared fields flow through.
  request.xbar.reset();
  EXPECT_EQ(request.xbar_options().seed, 7u);
  EXPECT_EQ(request.ls_options().seed, 7u);
}

TEST(SolverRegistry, CustomSolverCanBeRegistered) {
  auto& registry = engine::SolverRegistry::global();
  registry.register_solver(
      "test-stub", [](const lp::LinearProgram&, const engine::SolveRequest&) {
        engine::SolveReport report;
        report.solver = "test-stub";
        report.result.status = lp::SolveStatus::kOptimal;
        report.result.objective = 123.0;
        return report;
      });
  engine::SolveRequest request;
  request.solver = "test-stub";
  const auto report = engine::solve(golden_problem(6, 17), request);
  EXPECT_EQ(report.result.objective, 123.0);
  EXPECT_TRUE(registry.contains("test-stub"));
}

// --- heterogeneous batch -----------------------------------------------------

std::vector<engine::BatchItem> mixed_batch(
    const std::vector<lp::LinearProgram>& problems) {
  std::vector<engine::BatchItem> items(problems.size());
  const char* const kinds[] = {"simplex", "pdip", "xbar", "ls"};
  for (std::size_t i = 0; i < problems.size(); ++i) {
    items[i].problem = &problems[i];
    items[i].request.solver = kinds[i % 4];
    items[i].request.hardware = golden_hardware();
    items[i].request.seed = 4242 + i;
  }
  return items;
}

TEST(EngineBatch, HeterogeneousKindsMatchSequentialSolves) {
  std::vector<lp::LinearProgram> problems;
  for (std::size_t i = 0; i < 8; ++i)
    problems.push_back(golden_problem(6, 500 + i));
  const auto items = mixed_batch(problems);
  const auto reports = engine::solve_batch(items, /*threads=*/4);
  ASSERT_EQ(reports.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    // Report i must be exactly what item i's solver produces on its own:
    // outcome order is the item order, independent of scheduling.
    EXPECT_EQ(reports[i].solver, items[i].request.solver) << i;
    const auto direct = engine::solve(problems[i], items[i].request);
    expect_same_solve(reports[i].result, direct.result);
  }
}

TEST(EngineBatch, ThreadCountDoesNotChangeReports) {
  std::vector<lp::LinearProgram> problems;
  for (std::size_t i = 0; i < 8; ++i)
    problems.push_back(golden_problem(6, 700 + i));
  const auto items = mixed_batch(problems);
  const auto serial = engine::solve_batch(items, /*threads=*/1);
  const auto parallel = engine::solve_batch(items, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_solve(serial[i].result, parallel[i].result);
    EXPECT_EQ(serial[i].stats.iterations, parallel[i].stats.iterations) << i;
  }
}

TEST(EngineBatch, NullProblemAndUnknownSolverAreRejectedUpFront) {
  const auto problem = golden_problem(6, 17);
  engine::BatchItem bad_problem;  // null problem pointer.
  EXPECT_THROW(
      engine::solve_batch(std::span<const engine::BatchItem>(&bad_problem, 1)),
      ContractViolation);
  engine::BatchItem bad_solver;
  bad_solver.problem = &problem;
  bad_solver.request.solver = "no-such-solver";
  EXPECT_THROW(
      engine::solve_batch(std::span<const engine::BatchItem>(&bad_solver, 1)),
      ContractViolation);
}

}  // namespace
}  // namespace memlp
