// Tests for XbarPdipSession: array reuse across solves sharing a constraint
// matrix (zero re-programming for new b/c).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

XbarPdipOptions quiet_hardware() {
  XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  options.seed = 21;
  return options;
}

TEST(Session, SecondSolveWithSameAProgramsNothing) {
  Rng rng(1);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  const auto problem = lp::random_feasible(generator, rng);

  XbarPdipSession session(quiet_hardware());
  const auto first = session.solve(problem);
  ASSERT_EQ(first.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(first.stats.programming.xbar.cells_written, 0u);

  // New b and c, same A: re-priced problem.
  lp::LinearProgram repriced = problem;
  for (double& v : repriced.b) v *= 1.2;
  for (double& v : repriced.c) v *= 0.7;
  const auto second = session.solve(repriced);
  ASSERT_EQ(second.result.status, lp::SolveStatus::kOptimal);
  // Zero whole-array programming: only O(N) diagonal rewrites happened.
  EXPECT_EQ(second.stats.programming.xbar.cells_written, 0u);
  EXPECT_EQ(second.stats.programming.xbar.full_programs, 0u);
  EXPECT_GT(second.stats.backend.xbar.cells_written, 0u);

  // And the answer matches the exact optimum of the new problem.
  const auto reference = solvers::solve_simplex(repriced);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(second.result.objective, reference.objective),
            0.10);
}

TEST(Session, ChangedAReprogramsTransparently) {
  Rng rng(2);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  XbarPdipSession session(quiet_hardware());
  ASSERT_EQ(session.solve(problem).result.status,
            lp::SolveStatus::kOptimal);

  lp::LinearProgram changed = problem;
  Matrix changed_a = changed.a.dense();
  changed_a(0, 0) += 0.5;  // structural change
  changed.a = std::move(changed_a);
  const auto outcome = session.solve(changed);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(outcome.stats.programming.xbar.full_programs, 0u);
  const auto reference = solvers::solve_simplex(changed);
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.10);
}

TEST(Session, ChangedDimensionsRebuild) {
  Rng rng(3);
  lp::GeneratorOptions small;
  small.constraints = 8;
  lp::GeneratorOptions large;
  large.constraints = 16;
  XbarPdipSession session(quiet_hardware());
  const auto first = session.solve(lp::random_feasible(small, rng));
  const auto second = session.solve(lp::random_feasible(large, rng));
  ASSERT_EQ(first.result.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(second.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(second.stats.system_dim, first.stats.system_dim);
  EXPECT_GT(second.stats.programming.xbar.full_programs, 0u);
}

TEST(Session, MatchesOneShotSolverResults) {
  Rng rng(4);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  XbarPdipSession session(quiet_hardware());
  const auto via_session = session.solve(problem);
  const auto one_shot = solve_xbar_pdip(problem, quiet_hardware());
  ASSERT_EQ(via_session.result.status, one_shot.result.status);
  EXPECT_DOUBLE_EQ(via_session.result.objective, one_shot.result.objective);
}

TEST(Session, ManyRepricingsStayAccurate) {
  // Rolling-horizon scenario: same network, drifting capacities/prices.
  Rng rng(5);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  lp::LinearProgram problem = lp::random_feasible(generator, rng);
  XbarPdipSession session(quiet_hardware());
  std::size_t programmed = 0;
  for (int round = 0; round < 6; ++round) {
    for (double& v : problem.b) v *= rng.uniform(0.95, 1.05);
    for (double& v : problem.c) v *= rng.uniform(0.95, 1.05);
    const auto outcome = session.solve(problem);
    programmed += outcome.stats.programming.xbar.full_programs;
    ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal)
        << "round " << round;
    const auto reference = solvers::solve_simplex(problem);
    EXPECT_LT(lp::relative_error(outcome.result.objective,
                                 reference.objective),
              0.10)
        << "round " << round;
  }
  // At most the first solve's programming (plus any retry reprograms).
  EXPECT_LE(programmed, 2u);
}

}  // namespace
}  // namespace memlp::core
