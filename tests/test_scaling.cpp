// Tests for the analog problem normalization (core/scaling.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/scaling.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/ops.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

lp::LinearProgram badly_scaled() {
  // b ~ 1e3, c ~ 1e-2, A ~ 1: the raw data spans five decades.
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0, 0.5}, {0.25, 2.0}, {1.5, 1.0}};
  problem.b = {4e3, 1.2e4, 1.8e4};
  problem.c = {3e-2, 5e-2};
  return problem;
}

TEST(Scaling, NormalizesDataToUnitRange) {
  const ProblemScaling scaling(badly_scaled());
  EXPECT_NEAR(scaling.scaled().a.max_abs(), 1.0, 1e-12);
  EXPECT_NEAR(norm_inf(scaling.scaled().b), 1.0, 1e-12);
  EXPECT_NEAR(norm_inf(scaling.scaled().c), 1.0, 1e-12);
}

TEST(Scaling, ScaledProblemIsEquivalent) {
  const auto problem = badly_scaled();
  const ProblemScaling scaling(problem);
  // Solve both exactly; the unscaled objective must match.
  const auto original = solvers::solve_simplex(problem);
  ASSERT_EQ(original.status, lp::SolveStatus::kOptimal);
  auto scaled_result = solvers::solve_simplex(scaling.scaled());
  ASSERT_EQ(scaled_result.status, lp::SolveStatus::kOptimal);
  scaling.unscale(scaled_result);
  EXPECT_NEAR(scaled_result.objective, original.objective,
              1e-9 * (1.0 + std::abs(original.objective)));
  for (std::size_t j = 0; j < original.x.size(); ++j)
    EXPECT_NEAR(scaled_result.x[j], original.x[j],
                1e-7 * (1.0 + std::abs(original.x[j])));
}

TEST(Scaling, UnscaleRestoresAllCertificates) {
  Rng rng(1);
  lp::GeneratorOptions options;
  options.constraints = 12;
  options.coefficient_scale = 50.0;
  const auto problem = lp::random_feasible(options, rng);
  const ProblemScaling scaling(problem);

  // Build a scaled-space state and unscale it; verify the residual
  // identities transfer to original space.
  const auto scaled_result = solvers::solve_simplex(scaling.scaled());
  ASSERT_EQ(scaled_result.status, lp::SolveStatus::kOptimal);
  lp::SolveResult result = scaled_result;
  // Populate w from the scaled problem so unscale covers it.
  const Vec ax = scaling.scaled().a.multiply(result.x);
  result.w.resize(ax.size());
  for (std::size_t i = 0; i < ax.size(); ++i)
    result.w[i] = scaling.scaled().b[i] - ax[i];
  scaling.unscale(result);
  // Original-space primal feasibility: A·x + w = b.
  EXPECT_LT(problem.primal_infeasibility(result.x, result.w),
            1e-6 * (1.0 + norm_inf(problem.b)));
}

TEST(Scaling, IdentityOnAlreadyNormalizedData) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0, 0.25}, {0.5, 0.75}};
  problem.b = {1.0, 0.5};
  problem.c = {1.0, 0.3};
  const ProblemScaling scaling(problem);
  EXPECT_EQ(scaling.scaled().a, problem.a);
  EXPECT_EQ(scaling.scaled().b, problem.b);
  EXPECT_EQ(scaling.scaled().c, problem.c);
}

TEST(Scaling, RejectsInvalidShapes) {
  lp::LinearProgram bad;
  bad.a = Matrix{{1.0}};
  bad.b = {1.0, 2.0};
  bad.c = {1.0};
  EXPECT_THROW(ProblemScaling scaling(bad), DimensionError);
}

// The solvers must produce identical *original-unit* results whether the
// caller pre-scales or not (normalization is internal and idempotent).
TEST(Scaling, SolverInvariantUnderExternalRescaling) {
  Rng rng(2);
  lp::GeneratorOptions options;
  options.constraints = 12;
  const auto problem = lp::random_feasible(options, rng);
  lp::LinearProgram rescaled = problem;
  rescaled.a = rescaled.a.scaled(1e3);  // same LP, different units
  rescaled.c = scaled(rescaled.c, 1e3);

  XbarPdipOptions solver_options;
  solver_options.seed = 5;
  const auto original = solve_xbar_pdip(problem, solver_options);
  const auto scaled_run = solve_xbar_pdip(rescaled, solver_options);
  ASSERT_EQ(original.result.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(scaled_run.result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(original.result.objective, scaled_run.result.objective,
              1e-9 * (1.0 + std::abs(original.result.objective)));
}

}  // namespace
}  // namespace memlp::core
