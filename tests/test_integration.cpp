// End-to-end integration tests: all four solvers on the same problems,
// through the public API exactly as the examples and benches use it.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "perf/hardware_model.hpp"
#include "solvers/simplex.hpp"

namespace memlp {
namespace {

TEST(Integration, FourSolversAgreeOnRoutingLp) {
  Rng rng(1);
  const auto problem = lp::max_flow_routing(2, 3, rng);

  const auto simplex = solvers::solve_simplex(problem);
  ASSERT_EQ(simplex.status, lp::SolveStatus::kOptimal);

  const auto pdip = core::solve_pdip(problem);
  ASSERT_EQ(pdip.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(pdip.objective, simplex.objective), 1e-3);

  core::XbarPdipOptions xbar_options;
  xbar_options.seed = 7;
  const auto xbar = core::solve_xbar_pdip(problem, xbar_options);
  ASSERT_EQ(xbar.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(xbar.result.objective, simplex.objective),
            0.10);

  core::LsPdipOptions ls_options;
  ls_options.seed = 7;
  const auto ls = core::solve_ls_pdip(problem, ls_options);
  ASSERT_EQ(ls.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(ls.result.objective, simplex.objective), 0.15);
}

TEST(Integration, SchedulingLpThroughHardwareModel) {
  Rng rng(2);
  const auto problem = lp::production_scheduling(9, 6, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  core::XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.10);
  const auto outcome = core::solve_xbar_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);

  const perf::HardwareModel model;
  const auto hardware_cost = model.estimate(outcome.stats);
  const auto cpu_cost = perf::CpuModel{}.estimate(reference.wall_seconds);
  EXPECT_GT(hardware_cost.latency_s, 0.0);
  EXPECT_GT(hardware_cost.energy_j, 0.0);
  EXPECT_GT(cpu_cost.latency_s, 0.0);
}

TEST(Integration, InfeasibleDetectionAcrossSolvers) {
  Rng rng(3);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  const auto problem = lp::random_infeasible(generator, rng);
  EXPECT_EQ(solvers::solve_simplex(problem).status,
            lp::SolveStatus::kInfeasible);
  EXPECT_EQ(core::solve_pdip(problem).status, lp::SolveStatus::kInfeasible);
  EXPECT_EQ(core::solve_xbar_pdip(problem).result.status,
            lp::SolveStatus::kInfeasible);
  EXPECT_EQ(core::solve_ls_pdip(problem).result.status,
            lp::SolveStatus::kInfeasible);
}

TEST(Integration, VariationToleranceMirrorsPaperObservation) {
  // §4.3: perturbing A by Eq. (18) and solving *exactly* yields a relative
  // error comparable to the crossbar solver's — LPs are variation-tolerant.
  Rng rng(4);
  lp::GeneratorOptions generator;
  generator.constraints = 32;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  lp::LinearProgram perturbed = problem;
  const mem::VariationModel variation = mem::VariationModel::uniform(0.10);
  Rng vrng(5);
  Matrix perturbed_a = perturbed.a.dense();
  variation.perturb(perturbed_a, vrng);
  perturbed.a = std::move(perturbed_a);
  const auto perturbed_result = solvers::solve_simplex(perturbed);
  ASSERT_EQ(perturbed_result.status, lp::SolveStatus::kOptimal);
  const double exact_under_variation =
      lp::relative_error(perturbed_result.objective, reference.objective);
  EXPECT_LT(exact_under_variation, 0.15);
}

TEST(Integration, TransportationLpEndToEnd) {
  Rng rng(6);
  const auto problem = lp::transportation(4, 5, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  core::XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  options.seed = 11;
  const auto outcome = core::solve_xbar_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.10);
}

TEST(Integration, WholePipelineIsDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem_a = lp::random_feasible(generator, rng_a);
  const auto problem_b = lp::random_feasible(generator, rng_b);
  core::XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.20);
  options.seed = 42;
  const auto a = core::solve_xbar_pdip(problem_a, options);
  const auto b = core::solve_xbar_pdip(problem_b, options);
  EXPECT_DOUBLE_EQ(a.result.objective, b.result.objective);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.backend.xbar.cells_written,
            b.stats.backend.xbar.cells_written);
}

}  // namespace
}  // namespace memlp
