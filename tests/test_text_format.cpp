// Tests for the LP text format.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lp/generator.hpp"
#include "lp/text_format.hpp"
#include "solvers/simplex.hpp"

namespace memlp::lp {
namespace {

LinearProgram textbook() {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  return problem;
}

TEST(TextFormat, RoundTripsTextbookProblem) {
  const auto problem = textbook();
  const auto parsed = from_text(to_text(problem));
  EXPECT_EQ(parsed.a, problem.a);
  EXPECT_EQ(parsed.b, problem.b);
  EXPECT_EQ(parsed.c, problem.c);
}

TEST(TextFormat, ParsesHandWrittenInput) {
  const std::string text = R"(# a comment
memlp-lp 1
variables 2

maximize 3 5          # objective
1 0 <= 4
0 2 <= 12             # capacity
3 2 <= 18
)";
  const auto problem = from_text(text);
  EXPECT_EQ(problem.num_variables(), 2u);
  EXPECT_EQ(problem.num_constraints(), 3u);
  EXPECT_DOUBLE_EQ(problem.a(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(problem.b[1], 12.0);
  const auto result = solvers::solve_simplex(problem);
  EXPECT_NEAR(result.objective, 36.0, 1e-9);
}

TEST(TextFormat, PreservesNegativeAndFractionalValues) {
  LinearProgram problem;
  problem.a = Matrix{{-1.5, 0.25}, {1e-7, -3.14159265358979}};
  problem.b = {-2.5, 1e6};
  problem.c = {0.1, -0.2};
  const auto parsed = from_text(to_text(problem));
  EXPECT_EQ(parsed.a, problem.a);
  EXPECT_EQ(parsed.b, problem.b);
  EXPECT_EQ(parsed.c, problem.c);
}

class TextFormatRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TextFormatRoundTrip, RandomProblemsSurvive) {
  Rng rng(900 + GetParam());
  GeneratorOptions options;
  options.constraints = GetParam();
  const auto problem = random_feasible(options, rng);
  const auto parsed = from_text(to_text(problem));
  EXPECT_EQ(parsed.a, problem.a);
  EXPECT_EQ(parsed.b, problem.b);
  EXPECT_EQ(parsed.c, problem.c);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TextFormatRoundTrip,
                         ::testing::Values(4, 16, 48));

TEST(TextFormat, RejectsMissingHeader) {
  EXPECT_THROW(from_text("variables 2\nmaximize 1 1\n1 1 <= 2\n"),
               ParseError);
}

TEST(TextFormat, RejectsWrongCoefficientCount) {
  EXPECT_THROW(from_text("memlp-lp 1\nvariables 2\nmaximize 1\n1 1 <= 2\n"),
               ParseError);
  EXPECT_THROW(
      from_text("memlp-lp 1\nvariables 2\nmaximize 1 1\n1 <= 2\n"),
      ParseError);
}

TEST(TextFormat, RejectsMissingRelationOrRhs) {
  EXPECT_THROW(from_text("memlp-lp 1\nvariables 1\nmaximize 1\n2 4\n"),
               ParseError);
  EXPECT_THROW(from_text("memlp-lp 1\nvariables 1\nmaximize 1\n2 <=\n"),
               ParseError);
}

TEST(TextFormat, RejectsGarbageNumbersWithLineInfo) {
  try {
    from_text("memlp-lp 1\nvariables 1\nmaximize 1\nfoo <= 2\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(TextFormat, RejectsEmptyConstraintSet) {
  EXPECT_THROW(from_text("memlp-lp 1\nvariables 1\nmaximize 1\n"),
               ParseError);
}

TEST(TextFormat, RejectsTrailingTokens) {
  EXPECT_THROW(
      from_text("memlp-lp 1\nvariables 1\nmaximize 1\n1 <= 2 3\n"),
      ParseError);
}

}  // namespace
}  // namespace memlp::lp
