// Tests for memlp::obs::Profiler (obs/profiler.hpp): span nesting and
// aggregation, the thread-count invariance of the aggregate (the memlp::par
// determinism contract extended to observability, docs/parallelism.md), the
// timeline/Chrome-trace exporter, and the PhaseSpan bridge — plus the cost
// ledger (obs/cost_ledger.hpp): call-path attribution, the same thread-count
// invariance for its integer counter trees, and the Chrome counter-track
// export (perf/cost_tree.hpp).
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/par.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "perf/cost_tree.hpp"
#include "perf/hardware_model.hpp"

namespace {

using memlp::obs::CallPathStats;
using memlp::obs::CostCounters;
using memlp::obs::CostLedger;
using memlp::obs::CostTree;
using memlp::obs::ProfileSpan;
using memlp::obs::Profiler;

/// Scoped Profiler::set_active so a test failure can't leak an installed
/// profiler into later tests.
class ActiveProfiler {
 public:
  explicit ActiveProfiler(Profiler* profiler) { Profiler::set_active(profiler); }
  ~ActiveProfiler() { Profiler::set_active(nullptr); }
  ActiveProfiler(const ActiveProfiler&) = delete;
  ActiveProfiler& operator=(const ActiveProfiler&) = delete;
};

std::string text_field(const memlp::obs::Event& event, std::string_view key) {
  const auto* field = event.find(key);
  if (field == nullptr) return "";
  const auto* value = std::get_if<std::string>(&field->value);
  return value != nullptr ? *value : "";
}

const CallPathStats* find_path(const std::vector<CallPathStats>& stats,
                               const std::string& path) {
  for (const auto& entry : stats)
    if (entry.path == path) return &entry;
  return nullptr;
}

/// Burns a little deterministic work so spans have nonzero duration.
double spin() {
  volatile double acc = 0.0;
  for (int i = 0; i < 2000; ++i) acc = acc + 1.0 / (1.0 + i);
  return acc;
}

TEST(Profiler, InactiveSpansRecordNothing) {
  ASSERT_EQ(Profiler::active(), nullptr);
  { ProfileSpan span("orphan"); EXPECT_FALSE(span.active()); }
  Profiler profiler;
  EXPECT_TRUE(profiler.aggregate().empty());
}

TEST(Profiler, NestedSpansBuildSlashSeparatedPaths) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  {
    ProfileSpan root("solve");
    for (int i = 0; i < 3; ++i) {
      ProfileSpan inner("factor");
      spin();
      { ProfileSpan leaf("pivot"); spin(); }
    }
  }
  const auto stats = profiler.aggregate();
  ASSERT_EQ(stats.size(), 3u);
  const auto* root = find_path(stats, "solve");
  const auto* inner = find_path(stats, "solve/factor");
  const auto* leaf = find_path(stats, "solve/factor/pivot");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(root->count, 1u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(leaf->count, 3u);
  // Children are fully contained in their parents.
  EXPECT_GE(root->total_s, inner->total_s);
  EXPECT_GE(inner->total_s, leaf->total_s);
  // The quantile chain is ordered and within [0, max].
  EXPECT_GT(inner->total_s, 0.0);
  EXPECT_LE(inner->p50_s, inner->p95_s);
  EXPECT_LE(inner->p95_s, inner->max_s);
}

TEST(Profiler, ExplicitCloseRecordsOnceAndDestructorIsANoOp) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  {
    ProfileSpan span("once");
    span.close();
    span.close();  // idempotent
    EXPECT_FALSE(span.active());
  }
  const auto stats = profiler.aggregate();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 1u);
}

TEST(Profiler, ResetDiscardsRecordedData) {
  Profiler profiler(/*record_timeline=*/true);
  ActiveProfiler active(&profiler);
  { ProfileSpan span("ephemeral"); }
  profiler.reset();
  EXPECT_TRUE(profiler.aggregate().empty());
  EXPECT_TRUE(profiler.timeline().empty());
  { ProfileSpan span("after_reset"); }
  EXPECT_EQ(profiler.aggregate().size(), 1u);
}

/// Runs the same instrumented parallel workload at `threads` and returns the
/// aggregate. Worker spans must fold under the launching thread's path.
std::vector<CallPathStats> profiled_parallel_run(std::size_t threads) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  {
    ProfileSpan root("solve");
    memlp::par::parallel_for(
        32,
        [](std::size_t) {
          ProfileSpan item("tile");
          spin();
        },
        threads);
  }
  return profiler.aggregate();
}

TEST(Profiler, AggregateIsIdenticalAcrossThreadCounts) {
  const auto serial = profiled_parallel_run(1);
  const auto pooled = profiled_parallel_run(4);
  // Same call paths, same counts — only durations may differ.
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].path, pooled[i].path);
    EXPECT_EQ(serial[i].count, pooled[i].count);
  }
  const auto* tile = find_path(pooled, "solve/tile");
  ASSERT_NE(tile, nullptr);
  EXPECT_EQ(tile->count, 32u);
  // Pool bookkeeping spans (par.region / par.chunk) are timeline-only and
  // must never appear in the aggregate.
  for (const auto& entry : pooled)
    EXPECT_EQ(entry.path.find("par."), std::string::npos) << entry.path;
}

TEST(Profiler, TimelineRecordsPooledWorkerChunks) {
  Profiler profiler(/*record_timeline=*/true);
  ActiveProfiler active(&profiler);
  {
    ProfileSpan root("solve");
    memlp::par::parallel_for(
        32, [](std::size_t) { ProfileSpan item("tile"); spin(); }, 4);
  }
  const auto timeline = profiler.timeline();
  ASSERT_FALSE(timeline.empty());
  bool saw_region = false;
  bool saw_chunk = false;
  for (const auto& record : timeline) {
    EXPECT_GE(record.start_s, 0.0);
    EXPECT_GE(record.dur_s, 0.0);
    EXPECT_LT(record.slot, memlp::par::thread_slot_limit());
    if (record.path.find("par.region") != std::string::npos) saw_region = true;
    if (record.path.find("par.chunk") != std::string::npos) saw_chunk = true;
  }
  EXPECT_TRUE(saw_region);
  EXPECT_TRUE(saw_chunk);
  EXPECT_EQ(profiler.timeline_dropped(), 0u);
}

TEST(Profiler, PhaseSpanOpensAMatchingProfilerFrame) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  memlp::obs::MemoryTraceSink sink;
  {
    ProfileSpan root("pdip");
    memlp::obs::PhaseSpan phase(&sink, "pdip", "iterations");
    spin();
  }
  const auto stats = profiler.aggregate();
  const auto* nested = find_path(stats, "pdip/iterations");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->count, 1u);
  // The sink still sees the phase event (name survives the profiler hook).
  const auto phases = sink.events_of("phase");
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(text_field(phases[0], "phase"), "iterations");
}

TEST(Profiler, PhaseSpanWithoutSinkStillProfiles) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  { memlp::obs::PhaseSpan phase(nullptr, "pdip", "factorize"); }
  const auto stats = profiler.aggregate();
  const auto* entry = find_path(stats, "factorize");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 1u);
}

TEST(Profiler, TableRendersEveryPathWithAShareColumn) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  {
    ProfileSpan root("xbar");
    { ProfileSpan inner("settle"); spin(); }
  }
  const std::string rendered = profiler.table().str();
  EXPECT_NE(rendered.find("phase breakdown"), std::string::npos);
  EXPECT_NE(rendered.find("xbar"), std::string::npos);
  EXPECT_NE(rendered.find("xbar/settle"), std::string::npos);
  EXPECT_NE(rendered.find("share"), std::string::npos);
  EXPECT_NE(rendered.find("100.0%"), std::string::npos);  // root share
}

TEST(Profiler, ChromeTraceIsWellFormedJson) {
  Profiler profiler(/*record_timeline=*/true);
  ActiveProfiler active(&profiler);
  {
    ProfileSpan root("solve");
    memlp::par::parallel_for(
        8, [](std::size_t) { ProfileSpan item("tile"); spin(); }, 2);
  }
  const std::string path = testing::TempDir() + "/test_prof.chrome.json";
  ASSERT_TRUE(profiler.write_chrome_trace(path));

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = memlp::json::parse(buffer.str());

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.string_or("displayTimeUnit", ""), "ms");
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());
  std::set<std::string> names;
  for (const auto& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    EXPECT_FALSE(event.string_or("name", "").empty());
    EXPECT_EQ(event.string_or("ph", ""), "X");
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("dur"), nullptr);
    EXPECT_GE(event.number_or("ts", -1.0), 0.0);
    EXPECT_GE(event.number_or("dur", -1.0), 0.0);
    names.insert(event.string_or("name", ""));
  }
  EXPECT_TRUE(names.count("solve"));
  EXPECT_TRUE(names.count("tile"));
  std::remove(path.c_str());
}

// --- cost ledger ------------------------------------------------------------

/// Scoped CostLedger::set_active, mirroring ActiveProfiler.
class ActiveLedger {
 public:
  explicit ActiveLedger(CostLedger* ledger) { CostLedger::set_active(ledger); }
  ~ActiveLedger() { CostLedger::set_active(nullptr); }
  ActiveLedger(const ActiveLedger&) = delete;
  ActiveLedger& operator=(const ActiveLedger&) = delete;
};

TEST(CostLedger, ChargesAttributeToTheOpenCallPath) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  CostLedger ledger;
  ActiveLedger active_ledger(&ledger);
  CostLedger::charge_active({.flops = 1});  // no frame open → unattributed
  {
    ProfileSpan root("solve");
    CostLedger::charge_active({.settles = 2, .flops = 10});
    {
      ProfileSpan inner("factor");
      CostLedger::charge_active({.flops = 100, .bytes = 800});
      CostLedger::charge_active({});  // zero amounts are dropped
    }
  }
  const CostTree tree = ledger.tree();
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.at(CostLedger::kUnattributed).flops, 1u);
  EXPECT_EQ(tree.at("solve").settles, 2u);
  EXPECT_EQ(tree.at("solve").flops, 10u);
  EXPECT_EQ(tree.at("solve/factor").flops, 100u);
  EXPECT_EQ(tree.at("solve/factor").bytes, 800u);
  const CostCounters total = ledger.total();
  EXPECT_EQ(total.flops, 111u);
  EXPECT_EQ(total.settles, 2u);
  ledger.reset();
  EXPECT_TRUE(ledger.tree().empty());
}

TEST(CostLedger, ChargeWithNoActiveLedgerIsANoOp) {
  ASSERT_EQ(CostLedger::active(), nullptr);
  CostLedger::charge_active({.settles = 1});  // must not crash
}

/// Runs the same instrumented parallel workload at `threads` and returns the
/// ledger tree. Worker charges must land on the launching thread's path.
CostTree charged_parallel_run(std::size_t threads) {
  Profiler profiler;
  ActiveProfiler active(&profiler);
  CostLedger ledger;
  ActiveLedger active_ledger(&ledger);
  {
    ProfileSpan root("solve");
    memlp::par::parallel_for(
        32,
        [](std::size_t i) {
          ProfileSpan item("tile");
          CostLedger::charge_active({.settles = 1, .flops = 2 * (i + 1)});
          spin();
        },
        threads);
    CostLedger::charge_active({.controller_iterations = 1});
  }
  return ledger.tree();
}

TEST(CostLedger, TreeIsIdenticalAcrossThreadCounts) {
  const CostTree serial = charged_parallel_run(1);
  const CostTree pooled = charged_parallel_run(4);
  // Exact equality — integer counters merged in slot order, so the tree is
  // bit-identical at every MEMLP_THREADS value (the memlp::par contract).
  EXPECT_EQ(serial, pooled);
  ASSERT_TRUE(pooled.contains("solve/tile"));
  EXPECT_EQ(pooled.at("solve/tile").settles, 32u);
  EXPECT_EQ(pooled.at("solve/tile").flops, 2u * (32u * 33u / 2u));
  EXPECT_EQ(pooled.at("solve").controller_iterations, 1u);
}

TEST(CostLedger, ChromeCounterTracksAreWellFormedJson) {
  Profiler profiler(/*record_timeline=*/true);
  ActiveProfiler active(&profiler);
  CostLedger ledger(/*record_timeline=*/true);
  ActiveLedger active_ledger(&ledger);
  {
    ProfileSpan root("solve");
    for (int i = 0; i < 4; ++i) {
      ProfileSpan item("tile");
      CostLedger::charge_active({.settles = 1, .flops = 16});
      spin();
    }
  }
  EXPECT_TRUE(ledger.timeline_enabled());
  EXPECT_EQ(ledger.timeline_dropped(), 0u);

  const std::string path = testing::TempDir() + "/test_cost.chrome.json";
  {
    memlp::obs::ChromeTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    profiler.export_spans(sink);
    const memlp::perf::HardwareModel model;
    memlp::perf::export_counter_tracks(ledger, model, sink);
    sink.flush();
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = memlp::json::parse(buffer.str());
  ASSERT_TRUE(doc.is_object());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Counter events: ph "C", a known track name, a numeric cumulative value
  // that never decreases within a track.
  std::map<std::string, double> last_value;
  std::size_t counters = 0;
  for (const auto& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    if (event.string_or("ph", "") != "C") continue;
    ++counters;
    const std::string name = event.string_or("name", "");
    EXPECT_TRUE(name == "cost.energy_j" || name == "cost.flops") << name;
    EXPECT_GE(event.number_or("ts", -1.0), 0.0);
    const auto* args = event.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_TRUE(args->is_object());
    const auto* value = args->find("value");
    ASSERT_NE(value, nullptr);
    ASSERT_TRUE(value->is_number());
    const auto it = last_value.find(name);
    if (it != last_value.end()) {
      EXPECT_GE(value->as_number(), it->second);
    }
    last_value[name] = value->as_number();
  }
  // Every charge contributes one sample per track.
  EXPECT_EQ(counters, 2u * 4u);
  EXPECT_GT(last_value["cost.flops"], 0.0);
  EXPECT_GT(last_value["cost.energy_j"], 0.0);
  std::remove(path.c_str());
}

TEST(Profiler, ExportSpansReplaysTimelineIntoAnySink) {
  Profiler profiler(/*record_timeline=*/true);
  ActiveProfiler active(&profiler);
  { ProfileSpan span("alpha"); spin(); }
  memlp::obs::MemoryTraceSink sink;
  profiler.export_spans(sink);
  const auto spans = sink.events_of("span");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(text_field(spans[0], "path"), "alpha");
  EXPECT_GE(spans[0].number("dur_us"), 0.0);
}

}  // namespace
