// Tests for the factorization-reuse cache: precise invalidation semantics,
// Sherman–Morrison rank-k correction accuracy, and the fallback paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/factor_cache.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

Matrix random_well_conditioned(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  for (std::size_t i = 0; i < n; ++i)
    m(i, i) += static_cast<double>(n) + 1.0;
  return m;
}

Vec random_vec(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.normal();
  return b;
}

double solve_error(const Matrix& a, std::span<const double> b,
                   std::span<const double> x) {
  const Vec residual = sub(gemv(a, Vec(x.begin(), x.end())),
                           Vec(b.begin(), b.end()));
  return norm_inf(residual) / std::max(1.0, norm_inf(b));
}

TEST(FactorCache, NonIncrementalMatchesDirectLuBitwise) {
  Rng rng(1);
  const std::size_t n = 17;
  const Matrix a = random_well_conditioned(n, rng);
  const Vec b = random_vec(n, rng);
  FactorizationCache cache;
  ASSERT_TRUE(cache.prepare(a));
  const Vec x = cache.solve(b);
  const Vec expected = LuFactorization(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], expected[i]);
}

TEST(FactorCache, PrepareWithNothingDirtyIsAHit) {
  Rng rng(2);
  const Matrix a = random_well_conditioned(9, rng);
  FactorizationCache cache;
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().full_factorizations, 1u);
  ASSERT_TRUE(cache.prepare(a));
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().full_factorizations, 1u);
  EXPECT_EQ(cache.stats().prepare_hits, 2u);
}

TEST(FactorCache, NoteRowForcesRefactorInExactMode) {
  Rng rng(3);
  Matrix a = random_well_conditioned(9, rng);
  FactorizationCache cache;  // non-incremental
  ASSERT_TRUE(cache.prepare(a));
  a(4, 4) += 1.0;
  cache.note_row(4);
  const Vec b = random_vec(9, rng);
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().full_factorizations, 2u);
  const Vec x = cache.solve(b);
  const Vec expected = LuFactorization(a).solve(b);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(x[i], expected[i]);
}

TEST(FactorCache, IncrementalRowUpdateMatchesDirectSolve) {
  Rng rng(4);
  const std::size_t n = 24;
  Matrix a = random_well_conditioned(n, rng);
  FactorizationCache cache(
      {.incremental = true, .max_dirty_fraction = 0.5});
  ASSERT_TRUE(cache.prepare(a));

  // Perturb a handful of rows, the PDIP diagonal-rewrite pattern.
  for (std::size_t r : {3u, 7u, 11u}) {
    a(r, r) *= 1.5;
    a(r, (r + 2) % n) += 0.25;
    cache.note_row(r);
  }
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().full_factorizations, 1u);
  EXPECT_EQ(cache.stats().incremental_updates, 1u);

  const Vec b = random_vec(n, rng);
  const Vec x = cache.solve(b);
  EXPECT_LT(solve_error(a, b, x), 1e-12);
}

TEST(FactorCache, RepeatedUpdatesOnSameRowsReuseZ) {
  // The PDIP loop rewrites the SAME rows every iteration; after the first
  // incremental prepare, later ones must not add full factorizations.
  Rng rng(5);
  const std::size_t n = 30;
  Matrix a = random_well_conditioned(n, rng);
  FactorizationCache cache({.incremental = true, .refresh_interval = 100});
  ASSERT_TRUE(cache.prepare(a));
  for (std::size_t iteration = 0; iteration < 8; ++iteration) {
    for (std::size_t r : {2u, 9u, 20u}) {
      a(r, r) += 0.1 * static_cast<double>(iteration + 1);
      cache.note_row(r);
    }
    ASSERT_TRUE(cache.prepare(a));
    const Vec b = random_vec(n, rng);
    const Vec x = cache.solve(b);
    EXPECT_LT(solve_error(a, b, x), 1e-11) << "iteration " << iteration;
  }
  EXPECT_EQ(cache.stats().full_factorizations, 1u);
  EXPECT_EQ(cache.stats().incremental_updates, 8u);
}

TEST(FactorCache, LargeDirtyFractionFallsBackToFullLu) {
  Rng rng(6);
  const std::size_t n = 10;
  Matrix a = random_well_conditioned(n, rng);
  FactorizationCache cache(
      {.incremental = true, .max_dirty_fraction = 0.3});
  ASSERT_TRUE(cache.prepare(a));
  for (std::size_t r = 0; r < 6; ++r) {  // 60% of rows — over the threshold
    a(r, r) += 1.0;
    cache.note_row(r);
  }
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
  EXPECT_EQ(cache.stats().full_factorizations, 2u);
  EXPECT_EQ(cache.stats().incremental_updates, 0u);
  const Vec b = random_vec(n, rng);
  EXPECT_LT(solve_error(a, b, cache.solve(b)), 1e-12);
}

TEST(FactorCache, RefreshIntervalBoundsIncrementalChains) {
  Rng rng(7);
  const std::size_t n = 12;
  Matrix a = random_well_conditioned(n, rng);
  FactorizationCache cache({.incremental = true, .refresh_interval = 3});
  ASSERT_TRUE(cache.prepare(a));
  for (std::size_t k = 0; k < 7; ++k) {
    a(5, 5) += 0.05;
    cache.note_row(5);
    ASSERT_TRUE(cache.prepare(a));
  }
  // Updates 1..3 incremental, 4 refreshes, 5..7 incremental again.
  EXPECT_EQ(cache.stats().full_factorizations, 2u);
  EXPECT_EQ(cache.stats().incremental_updates, 6u);
}

TEST(FactorCache, NoteAllDropsTheCorrectionState) {
  Rng rng(8);
  const std::size_t n = 14;
  Matrix a = random_well_conditioned(n, rng);
  FactorizationCache cache({.incremental = true});
  ASSERT_TRUE(cache.prepare(a));
  a(1, 1) += 0.5;
  cache.note_row(1);
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().incremental_updates, 1u);
  // An unknown change set must trigger a full refactor.
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.1;
  cache.note_all();
  ASSERT_TRUE(cache.prepare(a));
  EXPECT_EQ(cache.stats().full_factorizations, 2u);
  const Vec b = random_vec(n, rng);
  EXPECT_LT(solve_error(a, b, cache.solve(b)), 1e-12);
}

TEST(FactorCache, SingularMatrixReportsFailure) {
  Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  FactorizationCache cache;
  EXPECT_FALSE(cache.prepare(singular));
  EXPECT_FALSE(cache.ready());
}

TEST(FactorCache, RecoversAfterSingularPhase) {
  // A singular prepare must not poison the cache once the matrix is fixed.
  Rng rng(9);
  Matrix a = random_well_conditioned(6, rng);
  FactorizationCache cache({.incremental = true});
  ASSERT_TRUE(cache.prepare(a));
  Matrix broken = a;
  for (std::size_t j = 0; j < 6; ++j) broken(2, j) = 0.0;
  cache.note_row(2);
  EXPECT_FALSE(cache.prepare(broken));
  cache.note_row(2);
  ASSERT_TRUE(cache.prepare(a));
  const Vec b = random_vec(6, rng);
  EXPECT_LT(solve_error(a, b, cache.solve(b)), 1e-12);
}

TEST(FactorCache, ShapeChangeInvalidates) {
  Rng rng(10);
  FactorizationCache cache({.incremental = true});
  ASSERT_TRUE(cache.prepare(random_well_conditioned(5, rng)));
  const Matrix bigger = random_well_conditioned(8, rng);
  ASSERT_TRUE(cache.prepare(bigger));
  EXPECT_EQ(cache.stats().full_factorizations, 2u);
  const Vec b = random_vec(8, rng);
  EXPECT_LT(solve_error(bigger, b, cache.solve(b)), 1e-12);
}

TEST(FactorCache, SolveBeforePrepareIsAContractViolation) {
  FactorizationCache cache;
  const Vec b{1.0, 2.0};
  EXPECT_THROW((void)cache.solve(b), ContractViolation);
}

}  // namespace
}  // namespace memlp
