// Tests for the §3.3 V/2 write-bias scheme: event accounting, half-select
// disturb, and per-read noise.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crossbar/crossbar.hpp"
#include "crossbar/write_scheme.hpp"
#include "linalg/ops.hpp"

namespace memlp::xbar {
namespace {

TEST(WriteScheme, EventCountsHalfSelectedCells) {
  const auto event =
      selective_write_event(mem::DeviceParameters{}, 8, 12, 0.0, 0.0);
  EXPECT_EQ(event.half_selected_cells, 11u + 7u);
  EXPECT_GT(event.selected_energy_j, 0.0);
  EXPECT_DOUBLE_EQ(event.half_select_energy_j, 0.0);  // no other devices
}

TEST(WriteScheme, HalfSelectEnergyScalesWithLineLoading) {
  const mem::DeviceParameters device;
  const auto light = selective_write_event(device, 64, 64, 1e-4, 1e-4);
  const auto heavy = selective_write_event(device, 64, 64, 1e-2, 1e-2);
  EXPECT_GT(heavy.half_select_energy_j, light.half_select_energy_j * 50.0);
  // Vdd/2 across heavy lines can dominate the selected cell's energy — the
  // large-array effect the ideal abstraction hides.
  EXPECT_GT(heavy.half_select_energy_j, heavy.selected_energy_j);
}

TEST(WriteScheme, SingleCellArrayHasNoHalfSelects) {
  const auto event =
      selective_write_event(mem::DeviceParameters{}, 1, 1, 0.0, 0.0);
  EXPECT_EQ(event.half_selected_cells, 0u);
}

CrossbarConfig base_config() {
  CrossbarConfig config;
  config.variation = mem::VariationModel::none();
  config.conductance_levels = 1 << 20;
  config.io_bits = 0;
  return config;
}

TEST(Crossbar, DisturbDriftsSharedRowAndColumn) {
  CrossbarConfig config = base_config();
  config.write_scheme.half_select_disturb = 1e-3;
  Crossbar xbar(config, Rng(1));
  xbar.program(Matrix(8, 8, 1.0), 4.0);
  const Matrix before = xbar.effective();
  // A large-change write to (3, 4) half-selects row 3 and column 4.
  xbar.update_cell(3, 4, 2.0);
  const Matrix& after = xbar.effective();
  double drift_shared = 0.0;
  for (std::size_t j = 0; j < 8; ++j)
    if (j != 4) drift_shared += std::abs(after(3, j) - before(3, j));
  EXPECT_GT(drift_shared, 0.0);
  // Cells on unrelated rows/columns are untouched.
  EXPECT_EQ(after(0, 0), before(0, 0));
  EXPECT_EQ(after(7, 7), before(7, 7));
}

TEST(Crossbar, DisturbAccumulatesOverManyWrites) {
  CrossbarConfig config = base_config();
  config.write_scheme.half_select_disturb = 1e-3;
  Crossbar xbar(config, Rng(2));
  xbar.program(Matrix(8, 8, 1.0), 4.0);
  // Hammer one cell; its row/column neighbours random-walk away from 1.0.
  for (int k = 0; k < 500; ++k)
    xbar.update_cell(0, 0, k % 2 == 0 ? 2.0 : 1.0);
  double drift = 0.0;
  for (std::size_t j = 1; j < 8; ++j)
    drift = std::max(drift, std::abs(xbar.effective()(0, j) - 1.0));
  EXPECT_GT(drift, 1e-3);   // visible accumulation
  EXPECT_LT(drift, 0.5);    // but still a perturbation, not corruption
}

TEST(Crossbar, ZeroDisturbIsIdeal) {
  CrossbarConfig config = base_config();
  Crossbar xbar(config, Rng(3));
  xbar.program(Matrix(6, 6, 1.0), 4.0);
  const Matrix before = xbar.effective();
  xbar.update_cell(2, 2, 3.0);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      if (i != 2 || j != 2) {
        EXPECT_EQ(xbar.effective()(i, j), before(i, j));
      }
}

TEST(Crossbar, ReadNoisePerturbsEveryRead) {
  CrossbarConfig config = base_config();
  config.read_noise_sigma = 0.01;
  Crossbar xbar(config, Rng(4));
  xbar.program(Matrix(6, 6, 1.0));
  const Vec x(6, 1.0);
  const Vec first = xbar.multiply(x);
  const Vec second = xbar.multiply(x);
  double difference = 0.0;
  for (std::size_t i = 0; i < 6; ++i)
    difference += std::abs(first[i] - second[i]);
  EXPECT_GT(difference, 0.0);  // noise is redrawn per read
  // Magnitude is about sigma of the output scale.
  const Vec clean_config_output = gemv(xbar.effective(), x);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(first[i], clean_config_output[i],
                6.0 * 0.01 * norm_inf(clean_config_output));
}

TEST(Crossbar, ReadNoiseConfigValidation) {
  CrossbarConfig config = base_config();
  config.read_noise_sigma = 0.9;
  EXPECT_THROW(config.validate(), ConfigError);
  config = base_config();
  config.write_scheme.half_select_disturb = 0.1;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace memlp::xbar
