// Tests for the dense Matrix type.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace memlp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), ContractViolation);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  const Vec d{2, 3, 4};
  const Matrix diag = Matrix::diagonal(d);
  EXPECT_EQ(diag(1, 1), 3.0);
  EXPECT_EQ(diag(2, 1), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, 2), ContractViolation);
}

TEST(Matrix, BlockRoundTrip) {
  Matrix m(4, 4);
  Matrix block{{1, 2}, {3, 4}};
  m.set_block(1, 2, block);
  EXPECT_EQ(m(1, 2), 1.0);
  EXPECT_EQ(m(2, 3), 4.0);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m.block(1, 2, 2, 2), block);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix m(3, 3);
  EXPECT_THROW(m.block(2, 2, 2, 2), ContractViolation);
  Matrix big(4, 4);
  EXPECT_THROW(m.set_block(0, 0, big), ContractViolation);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(3);
  Matrix m(5, 3);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.normal();
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.transposed(), m);
  EXPECT_EQ(t(2, 4), m(4, 2));
}

TEST(Matrix, Norms) {
  Matrix m{{1, -2}, {-3, 0.5}};
  EXPECT_DOUBLE_EQ(m.max_abs(), 3.0);
  EXPECT_DOUBLE_EQ(m.inf_norm(), 3.5);  // row 1: |−3| + |0.5|
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(1 + 4 + 9 + 0.25), 1e-12);
}

TEST(Matrix, NonnegativeDetection) {
  EXPECT_TRUE((Matrix{{0, 1}, {2, 3}}).nonnegative());
  EXPECT_FALSE((Matrix{{0, 1}, {-1e-30, 3}}).nonnegative());
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  EXPECT_EQ(a + b, (Matrix{{5, 5}, {5, 5}}));
  EXPECT_EQ(a - b, (Matrix{{-3, -1}, {1, 3}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(Matrix, ArithmeticShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, ContractViolation);
}

TEST(Matrix, HadamardMatchesElementwise) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 0.5}, {-1, 3}};
  const Matrix h = a.hadamard(b);
  EXPECT_EQ(h, (Matrix{{2, 1}, {-3, 12}}));
}

TEST(Matrix, RowSpanIsWritable) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_EQ(m(1, 2), 9.0);
}

}  // namespace
}  // namespace memlp
