// Tests for the BLAS-like free functions.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

Vec random_vec(std::size_t n, Rng& rng) {
  Vec v(n);
  for (double& x : v) x = rng.normal();
  return v;
}

TEST(Ops, GemvKnownValues) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Vec x{1, -1};
  const Vec y = gemv(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Ops, GemvDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Vec x(2);
  EXPECT_THROW(gemv(a, x), ContractViolation);
}

TEST(Ops, GemvTransposedMatchesExplicitTranspose) {
  Rng rng(1);
  const Matrix a = random_matrix(7, 4, rng);
  const Vec x = random_vec(7, rng);
  const Vec expected = gemv(a.transposed(), x);
  const Vec actual = gemv_transposed(a, x);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i)
    EXPECT_NEAR(actual[i], expected[i], 1e-12);
}

TEST(Ops, GemmMatchesManual) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 1}, {1, 0}};
  EXPECT_EQ(gemm(a, b), (Matrix{{2, 1}, {4, 3}}));
}

TEST(Ops, GemmAssociativeWithVector) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 6, rng);
  const Matrix b = random_matrix(6, 4, rng);
  const Vec x = random_vec(4, rng);
  const Vec left = gemv(gemm(a, b), x);
  const Vec right = gemv(a, gemv(b, x));
  for (std::size_t i = 0; i < left.size(); ++i)
    EXPECT_NEAR(left[i], right[i], 1e-10);
}

TEST(Ops, AxpyAndDot) {
  Vec y{1, 2, 3};
  const Vec x{1, 1, 1};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{3, 4, 5}));
  EXPECT_DOUBLE_EQ(dot(x, y), 12.0);
}

TEST(Ops, AddSubScale) {
  const Vec a{1, 2};
  const Vec b{3, 5};
  EXPECT_EQ(add(a, b), (Vec{4, 7}));
  EXPECT_EQ(sub(b, a), (Vec{2, 3}));
  EXPECT_EQ(scaled(a, -2.0), (Vec{-2, -4}));
}

TEST(Ops, Norms) {
  const Vec v{3, -4};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vec{}), 0.0);
}

TEST(Ops, MaxElement) {
  EXPECT_DOUBLE_EQ(max_element(Vec{-5, -2, -9}), -2.0);
  EXPECT_THROW(max_element(Vec{}), ContractViolation);
}

TEST(Ops, Hadamard) {
  EXPECT_EQ(hadamard(Vec{1, 2, 3}, Vec{2, 0, -1}), (Vec{2, 0, -3}));
}

TEST(Ops, ConcatAndSlice) {
  const Vec a{1, 2};
  const Vec b{3};
  const Vec c{4, 5, 6};
  const Vec joined = concat({a, b, c});
  EXPECT_EQ(joined, (Vec{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(slice(joined, 2, 3), (Vec{3, 4, 5}));
  EXPECT_THROW(slice(joined, 5, 3), ContractViolation);
}

// Property sweep: gemv linearity over random shapes.
class GemvLinearity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GemvLinearity, IsLinear) {
  Rng rng(GetParam());
  const std::size_t n = 2 + GetParam() % 17;
  const std::size_t m = 1 + (GetParam() * 7) % 23;
  const Matrix a = random_matrix(m, n, rng);
  const Vec x = random_vec(n, rng);
  const Vec y = random_vec(n, rng);
  const double alpha = rng.normal();
  const Vec lhs = gemv(a, add(x, scaled(y, alpha)));
  Vec rhs = gemv(a, x);
  axpy(alpha, gemv(a, y), rhs);
  for (std::size_t i = 0; i < lhs.size(); ++i)
    EXPECT_NEAR(lhs[i], rhs[i], 1e-9 * (1.0 + std::abs(rhs[i])));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemvLinearity,
                         ::testing::Range<std::size_t>(1, 21));

}  // namespace
}  // namespace memlp
