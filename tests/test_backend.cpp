// Tests for the analog backend abstraction (single crossbar vs tiled NoC)
// and the per-cell gain-ranging write mode.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/backend.hpp"
#include "linalg/ops.hpp"

namespace memlp::core {
namespace {

Matrix random_nonneg(std::size_t n, Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

BackendOptions ideal_options() {
  BackendOptions options;
  options.crossbar.variation = mem::VariationModel::none();
  options.crossbar.conductance_levels = 1 << 20;
  options.crossbar.io_bits = 0;
  return options;
}

TEST(Backend, SelectsSingleCrossbarBySizeLimit) {
  const auto small = make_backend(ideal_options(), 32, Rng(1));
  EXPECT_NE(small->describe().find("single crossbar"), std::string::npos);
}

TEST(Backend, SelectsNocWhenDimExceedsLimit) {
  BackendOptions options = ideal_options();
  options.crossbar.max_dim = 16;
  options.tile_dim = 16;
  const auto big = make_backend(options, 40, Rng(2));
  EXPECT_NE(big->describe().find("NoC"), std::string::npos);
}

TEST(Backend, ForceNocOverridesSize) {
  BackendOptions options = ideal_options();
  options.force_noc = true;
  options.tile_dim = 8;
  const auto backend = make_backend(options, 12, Rng(3));
  EXPECT_NE(backend->describe().find("NoC"), std::string::npos);
  Rng rng(30);
  backend->program(random_nonneg(12, rng), 0.0);
  EXPECT_GT(backend->stats().num_tiles, 1u);
}

TEST(Backend, SingleAndTiledComputeTheSameMath) {
  Rng rng(4);
  const std::size_t dim = 20;
  const Matrix a = random_nonneg(dim, rng);
  Vec x(dim);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  const auto single = make_backend(ideal_options(), dim, Rng(5));
  BackendOptions tiled_options = ideal_options();
  tiled_options.force_noc = true;
  tiled_options.tile_dim = 7;
  const auto tiled = make_backend(tiled_options, dim, Rng(5));

  single->program(a, 0.0);
  tiled->program(a, 0.0);
  const Vec y_single = single->multiply(x);
  const Vec y_tiled = tiled->multiply(x);
  for (std::size_t i = 0; i < dim; ++i)
    EXPECT_NEAR(y_single[i], y_tiled[i], 1e-4 * (1.0 + std::abs(y_single[i])));

  const auto s_single = single->solve(x);
  const auto s_tiled = tiled->solve(x);
  ASSERT_TRUE(s_single.has_value());
  ASSERT_TRUE(s_tiled.has_value());
  for (std::size_t i = 0; i < dim; ++i)
    EXPECT_NEAR((*s_single)[i], (*s_tiled)[i],
                1e-4 * (1.0 + std::abs((*s_single)[i])));
}

TEST(Backend, UpdateCellFlowsThroughBothKinds) {
  Rng rng(6);
  const std::size_t dim = 10;
  const Matrix a = random_nonneg(dim, rng);
  for (const bool force_noc : {false, true}) {
    BackendOptions options = ideal_options();
    options.force_noc = force_noc;
    options.tile_dim = 4;
    const auto backend = make_backend(options, dim, Rng(7));
    backend->program(a, 2.0 * a.max_abs());
    backend->update_cell(3, 3, a(3, 3) + 1.0);
    Vec e(dim, 0.0);
    e[3] = 1.0;
    const Vec column = backend->multiply(e);
    EXPECT_NEAR(column[3], a(3, 3) + 1.0, 1e-4 * (a(3, 3) + 1.0));
  }
}

TEST(Backend, StatsAccumulateAndDiff) {
  const auto backend = make_backend(ideal_options(), 8, Rng(8));
  Rng rng(9);
  backend->program(random_nonneg(8, rng), 0.0);
  const BackendStats after_program = backend->stats();
  EXPECT_EQ(after_program.xbar.full_programs, 1u);
  (void)backend->multiply(Vec(8, 1.0));
  const BackendStats total = backend->stats();
  const BackendStats delta = total.since(after_program);
  EXPECT_EQ(delta.xbar.mvm_ops, 1u);
  EXPECT_EQ(delta.xbar.cells_written, 0u);
}

// Per-cell gain ranging: relative precision across decades.
TEST(GainRanging, RepresentsWideDynamicRange) {
  xbar::CrossbarConfig config;
  config.variation = mem::VariationModel::none();
  config.io_bits = 0;
  config.per_cell_gain_ranging = true;
  xbar::Crossbar crossbar(config, Rng(10));
  Matrix a(2, 2);
  a(0, 0) = 1e-4;
  a(0, 1) = 1.0;
  a(1, 0) = 1e4;
  a(1, 1) = 0.0;
  crossbar.program(a);
  // Every cell is accurate to its own magnitude (256-level mantissa).
  EXPECT_NEAR(crossbar.effective()(0, 0), 1e-4, 1e-4 / 128);
  EXPECT_NEAR(crossbar.effective()(0, 1), 1.0, 1.0 / 128);
  EXPECT_NEAR(crossbar.effective()(1, 0), 1e4, 1e4 / 128);
  EXPECT_EQ(crossbar.effective()(1, 1), 0.0);
}

TEST(GainRanging, NoFullScaleReprogramOnLargeUpdates) {
  xbar::CrossbarConfig config;
  config.variation = mem::VariationModel::none();
  config.io_bits = 0;
  config.per_cell_gain_ranging = true;
  xbar::Crossbar crossbar(config, Rng(11));
  crossbar.program(Matrix(4, 4, 1.0));
  const auto programs_before = crossbar.stats().full_programs;
  crossbar.update_cell(0, 0, 1e6);  // far beyond the initial full scale
  EXPECT_EQ(crossbar.stats().full_programs, programs_before);
  EXPECT_NEAR(crossbar.effective()(0, 0), 1e6, 1e6 / 128);
}

TEST(GainRanging, UnchangedValueIsNotRewritten) {
  xbar::CrossbarConfig config;
  config.variation = mem::VariationModel::uniform(0.10);
  config.io_bits = 0;
  config.per_cell_gain_ranging = true;
  xbar::Crossbar crossbar(config, Rng(12));
  crossbar.program(Matrix(3, 3, 0.5));
  const auto cells_before = crossbar.stats().cells_written;
  const double effective_before = crossbar.effective()(1, 1);
  crossbar.update_cell(1, 1, 0.5);
  EXPECT_EQ(crossbar.stats().cells_written, cells_before);
  EXPECT_EQ(crossbar.effective()(1, 1), effective_before);  // keeps its draw
}

TEST(GainRanging, RequiresCompensatedReadout) {
  xbar::CrossbarConfig config;
  config.per_cell_gain_ranging = true;
  config.compensate_sense_divider = false;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace memlp::core
