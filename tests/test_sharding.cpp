// Sharded solve past N = 1000: a sparse block-diagonal LP whose augmented
// system exceeds a single crossbar maps onto the tiled NoC array, and the
// structurally-zero shards are verifiably never programmed (BackendStats
// zero_tiles). The solve itself still reaches the simplex optimum.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

XbarPdipOptions sharded_ideal_hardware() {
  XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::none();
  options.hardware.crossbar.conductance_levels = 1 << 20;
  options.hardware.crossbar.io_bits = 0;
  options.hardware.force_noc = true;
  options.hardware.tile_dim = 128;
  // Factorization reuse keeps the >1000-dim settle simulation affordable.
  options.settle_mode = xbar::SettleMode::kReuse;
  return options;
}

TEST(Sharding, SparseThousandDimSolveSkipsZeroShards) {
  // 8 independent 48x16 blocks: m = 384, n = 128, density exactly 1/8.
  // The Eq. 12 KKT system has dimension 2(n+m) = 1024; after negative
  // elimination the programmed array is slightly larger still.
  Rng rng(21);
  const auto problem = lp::block_diagonal(8, 48, 16, rng);
  ASSERT_EQ(problem.num_constraints(), 384u);
  ASSERT_EQ(problem.num_variables(), 128u);
  EXPECT_LT(problem.a.density(), 0.2);

  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  const auto outcome = solve_xbar_pdip(problem, sharded_ideal_hardware());
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            1e-4);

  // The array sharded: dimension past 1024 over 128-wide tiles.
  EXPECT_GE(outcome.stats.system_dim, 1024u);
  const std::size_t grid = (outcome.stats.system_dim + 127) / 128;
  ASSERT_GE(grid, 9u);
  EXPECT_EQ(outcome.stats.backend.num_tiles, grid * grid);

  // Block-diagonal sparsity leaves most off-diagonal shards structurally
  // zero; they must never have been programmed. The A and A^T blocks of the
  // KKT matrix are block-diagonal, so well over a third of the grid is
  // empty.
  EXPECT_GT(outcome.stats.backend.zero_tiles, grid * grid / 3);
  EXPECT_LT(outcome.stats.backend.zero_tiles, grid * grid);
  // Programming traffic covered at most the non-zero shards.
  const double tile_cells = 128.0 * 128.0;
  const std::size_t programmed_tiles =
      outcome.stats.backend.num_tiles - outcome.stats.backend.zero_tiles;
  EXPECT_LE(outcome.stats.programming.xbar.cells_written,
            static_cast<std::size_t>(tile_cells) * programmed_tiles);
}

TEST(Sharding, ZeroTileGaugeTracksStructureNotTheNocPath) {
  // Control: a dense random LP. Its augmented matrix still has the fixed
  // Eq. 12 zero blocks (the gauge reflects array structure), but most
  // shards carry data and are programmed.
  Rng rng(5);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);

  XbarPdipOptions options = sharded_ideal_hardware();
  options.hardware.tile_dim = 32;
  const auto tiled = solve_xbar_pdip(problem, options);
  ASSERT_EQ(tiled.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(tiled.stats.backend.num_tiles, 1u);
  EXPECT_LT(tiled.stats.backend.zero_tiles, tiled.stats.backend.num_tiles);

  // Off the NoC path a single monolithic array reports no shards at all.
  options.hardware.force_noc = false;
  options.hardware.tile_dim = 128;
  const auto single = solve_xbar_pdip(problem, options);
  ASSERT_EQ(single.result.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(single.stats.backend.num_tiles, 1u);
  EXPECT_EQ(single.stats.backend.zero_tiles, 0u);
}

}  // namespace
}  // namespace memlp::core
