// Tests for the software PDIP baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

TEST(Pdip, TextbookProblem) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto result = solve_pdip(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-4);
  EXPECT_NEAR(result.x[0], 2.0, 1e-3);
  EXPECT_NEAR(result.x[1], 6.0, 1e-3);
}

TEST(Pdip, ReturnsInteriorDualCertificates) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto result = solve_pdip(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  // Strong duality at convergence: bᵀy ≈ cᵀx.
  double by = 0.0;
  for (std::size_t i = 0; i < 3; ++i) by += problem.b[i] * result.y[i];
  EXPECT_NEAR(by, result.objective, 1e-3);
  // All iterates stay non-negative.
  for (double v : result.x) EXPECT_GE(v, 0.0);
  for (double v : result.y) EXPECT_GE(v, 0.0);
  for (double v : result.w) EXPECT_GE(v, 0.0);
  for (double v : result.z) EXPECT_GE(v, 0.0);
}

TEST(Pdip, DetectsInfeasibility) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0}, {-1.0}};
  problem.b = {1.0, -2.0};
  problem.c = {1.0};
  const auto result = solve_pdip(problem);
  EXPECT_EQ(result.status, lp::SolveStatus::kInfeasible);
}

TEST(Pdip, DetectsUnbounded) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0, -1.0}};
  problem.b = {1.0};
  problem.c = {1.0, 0.0};
  const auto result = solve_pdip(problem);
  EXPECT_EQ(result.status, lp::SolveStatus::kUnbounded);
}

TEST(Pdip, IterationCountIsModest) {
  Rng rng(1);
  lp::GeneratorOptions options;
  options.constraints = 32;
  const auto problem = lp::random_feasible(options, rng);
  const auto result = solve_pdip(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(result.iterations, 100u);  // interior point converges fast
}

// Property: PDIP matches the simplex optimum on random feasible LPs.
class PdipVsSimplex : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PdipVsSimplex, ObjectivesAgree) {
  Rng rng(400 + GetParam());
  lp::GeneratorOptions options;
  options.constraints = GetParam();
  const auto problem = lp::random_feasible(options, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  const auto result = solve_pdip(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(result.objective, reference.objective), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PdipVsSimplex,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 48));

// Property: PDIP detects infeasibility on generated infeasible LPs.
class PdipInfeasible : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PdipInfeasible, Detected) {
  Rng rng(500 + GetParam());
  lp::GeneratorOptions options;
  options.constraints = GetParam();
  const auto problem = lp::random_infeasible(options, rng);
  EXPECT_EQ(solve_pdip(problem).status, lp::SolveStatus::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PdipInfeasible,
                         ::testing::Values(4, 8, 16, 32));

TEST(Pdip, SolvesDomainProblems) {
  Rng rng(2);
  const auto routing = lp::max_flow_routing(2, 2, rng);
  const auto scheduling = lp::production_scheduling(5, 3, rng);
  const auto reference_routing = solvers::solve_simplex(routing);
  const auto reference_scheduling = solvers::solve_simplex(scheduling);
  const auto pdip_routing = solve_pdip(routing);
  const auto pdip_scheduling = solve_pdip(scheduling);
  ASSERT_EQ(pdip_routing.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(pdip_scheduling.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(pdip_routing.objective,
                               reference_routing.objective),
            1e-3);
  EXPECT_LT(lp::relative_error(pdip_scheduling.objective,
                               reference_scheduling.objective),
            1e-3);
}

TEST(Pdip, RespectsIterationLimit) {
  Rng rng(3);
  lp::GeneratorOptions options;
  options.constraints = 16;
  const auto problem = lp::random_feasible(options, rng);
  PdipOptions solver_options;
  solver_options.max_iterations = 2;
  const auto result = solve_pdip(problem, solver_options);
  EXPECT_EQ(result.status, lp::SolveStatus::kIterationLimit);
  EXPECT_EQ(result.iterations, 2u);
}


// Mehrotra predictor-corrector (extension): same answers, fewer iterations.
class PredictorCorrectorSweep : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(PredictorCorrectorSweep, MatchesPlainRuleWithFewerIterations) {
  Rng rng(600 + GetParam());
  lp::GeneratorOptions options;
  options.constraints = GetParam();
  const auto problem = lp::random_feasible(options, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  PdipOptions plain;
  const auto base = solve_pdip(problem, plain);
  ASSERT_EQ(base.status, lp::SolveStatus::kOptimal);

  PdipOptions mehrotra;
  mehrotra.predictor_corrector = true;
  const auto pc = solve_pdip(problem, mehrotra);
  ASSERT_EQ(pc.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(pc.objective, reference.objective), 1e-4);
  EXPECT_LE(pc.iterations, base.iterations);

  // And combined with the normal-equations system.
  PdipOptions both;
  both.predictor_corrector = true;
  both.newton = NewtonFactorization::kNormalEquations;
  const auto combined = solve_pdip(problem, both);
  ASSERT_EQ(combined.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(combined.objective, reference.objective),
            1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredictorCorrectorSweep,
                         ::testing::Values(8, 16, 32, 64));

TEST(Pdip, PredictorCorrectorDetectsInfeasibility) {
  Rng rng(4);
  lp::GeneratorOptions options;
  options.constraints = 16;
  const auto problem = lp::random_infeasible(options, rng);
  PdipOptions mehrotra;
  mehrotra.predictor_corrector = true;
  EXPECT_EQ(solve_pdip(problem, mehrotra).status,
            lp::SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace memlp::core
