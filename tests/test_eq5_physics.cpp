// Cross-validation of the crossbar simulator against the Eq. (5) physics.
//
// §2.3: with input voltages VI on the word lines and sense resistors of
// conductance g_s on the bit lines, the output voltages are VO = C·VI with
//   C = D·Gᵀ,  d_j = 1 / (g_s + Σ_k g(k, j)).
// The simulator's uncompensated read path must reproduce exactly this
// voltage-divider result, and the compensated path must recover the ideal
// products g_s·VO → Gᵀ·VI.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "crossbar/crossbar.hpp"
#include "linalg/ops.hpp"

namespace memlp::xbar {
namespace {

CrossbarConfig physics_config() {
  CrossbarConfig config;
  config.variation = mem::VariationModel::none();
  config.conductance_levels = 1 << 20;
  config.io_bits = 0;
  config.subtract_gmin_offset = false;  // raw conductance view
  return config;
}

/// Builds Eq. (5)'s C = D·Gᵀ from a conductance matrix (logical orientation:
/// G(i, j) is the device between WL i and BL j; the crossbar stores the
/// logical matrix A at the same crosspoints, so outputs index logical rows).
Matrix eq5_connection_matrix(const Matrix& g_physical, double gs) {
  const std::size_t wl = g_physical.rows();
  const std::size_t bl = g_physical.cols();
  Matrix c(bl, wl);
  for (std::size_t j = 0; j < bl; ++j) {
    double column_sum = 0.0;
    for (std::size_t k = 0; k < wl; ++k) column_sum += g_physical(k, j);
    const double d = 1.0 / (gs + column_sum);
    for (std::size_t i = 0; i < wl; ++i) c(j, i) = d * g_physical(i, j);
  }
  return c;
}

TEST(Eq5Physics, UncompensatedReadMatchesVoltageDivider) {
  Rng rng(1);
  const std::size_t n = 6;
  // Logical matrix A; the simulator's multiply() computes A·x with outputs
  // on the bit lines of the physical transpose, so G_phys = mapped(A)ᵀ.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.1, 1.0);

  CrossbarConfig config = physics_config();
  config.compensate_sense_divider = false;
  Crossbar xbar(config, Rng(2));
  xbar.program(a);

  Vec vi(n);
  for (double& v : vi) v = rng.uniform(-1.0, 1.0);
  const Vec vo_sim = xbar.multiply(vi);

  // Reconstruct the physical conductances the simulator realized: the
  // effective logical value times the mapping slope plus g_min offset.
  // With subtract_gmin_offset=false, effective() == g_eff/slope, so
  // g_phys(i, j) = effective(j, i) · slope. The slope cancels in C·VI only
  // through d_j, so rebuild it from the raw window.
  const double g_min = config.device.g_min();
  const double g_max = config.device.g_max();
  const double slope = (g_max - g_min) / a.max_abs();
  Matrix g_physical(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      g_physical(i, j) = xbar.effective()(j, i) * slope;

  const Matrix c = eq5_connection_matrix(g_physical, config.sense_conductance);
  const Vec vo_expected = gemv(c, vi);
  // The simulator reports g_s-referred outputs (b = g_s·VO / slope); undo
  // both factors for the comparison.
  for (std::size_t j = 0; j < n; ++j) {
    const double vo_sim_physical =
        vo_sim[j] * slope / config.sense_conductance;
    EXPECT_NEAR(vo_sim_physical, vo_expected[j],
                1e-9 * (1.0 + std::abs(vo_expected[j])))
        << "bit line " << j;
  }
}

TEST(Eq5Physics, CompensatedReadRecoversIdealProducts) {
  Rng rng(3);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.0, 2.0);
  CrossbarConfig config = physics_config();
  config.subtract_gmin_offset = true;
  Crossbar xbar(config, Rng(4));
  xbar.program(a);
  Vec x(n);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = xbar.multiply(x);
  const Vec ideal = gemv(a, x);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[i], ideal[i], 1e-4 * (1.0 + std::abs(ideal[i])));
}

TEST(Eq5Physics, DividerErrorShrinksWithLargerSenseConductance) {
  Rng rng(5);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(0.1, 1.0);
  Vec x(n, 1.0);

  const auto divider_error = [&](double gs) {
    CrossbarConfig config = physics_config();
    config.compensate_sense_divider = false;
    config.subtract_gmin_offset = true;
    config.sense_conductance = gs;
    Crossbar xbar(config, Rng(6));
    xbar.program(a);
    const Vec attenuated = xbar.multiply(x);
    const Vec ideal = gemv(xbar.effective(), x);
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      worst = std::max(worst,
                       std::abs(attenuated[i] - ideal[i]) /
                           (1.0 + std::abs(ideal[i])));
    return worst;
  };

  // g_s ≫ Σg approaches the virtual-ground ideal ([8]'s approximation).
  EXPECT_LT(divider_error(10.0), divider_error(0.01));
  EXPECT_LT(divider_error(10.0), 1e-2);
}

}  // namespace
}  // namespace memlp::xbar
