// Tests for the crossbar array simulator: mapping fidelity, analog MVM and
// solve, partial updates, variation behaviour, and operation accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crossbar/crossbar.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp::xbar {
namespace {

CrossbarConfig ideal_config() {
  CrossbarConfig config;
  config.variation = mem::VariationModel::none();
  config.conductance_levels = 1 << 20;  // essentially continuous writes
  config.io_bits = 0;                   // ideal I/O
  return config;
}

Matrix random_nonneg(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(0.0, 2.0);
  return m;
}

TEST(Crossbar, RejectsNegativeMatrix) {
  Crossbar xbar(ideal_config(), Rng(1));
  Matrix m{{1.0, -0.5}, {0.0, 2.0}};
  EXPECT_THROW(xbar.program(m), ContractViolation);
}

TEST(Crossbar, RejectsOversizedMatrix) {
  CrossbarConfig config = ideal_config();
  config.max_dim = 4;
  Crossbar xbar(config, Rng(1));
  EXPECT_THROW(xbar.program(Matrix(5, 3, 1.0)), ContractViolation);
  EXPECT_NO_THROW(xbar.program(Matrix(4, 4, 1.0)));
}

TEST(Crossbar, EffectiveTracksIdealWithoutImperfections) {
  Rng rng(2);
  const Matrix a = random_nonneg(8, 6, rng);
  Crossbar xbar(ideal_config(), Rng(3));
  xbar.program(a);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(xbar.effective()(i, j), a(i, j), 1e-5 * (1 + a(i, j)));
}

TEST(Crossbar, WritePrecisionFloorsAccuracy) {
  // 256 conductance levels (8-bit writes) bound the per-cell mapping error
  // by half a level step of the full-scale.
  Rng rng(4);
  const Matrix a = random_nonneg(10, 10, rng);
  CrossbarConfig config = ideal_config();
  config.conductance_levels = 256;
  Crossbar xbar(config, Rng(5));
  xbar.program(a);
  const double step = a.max_abs() / 255.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_LE(std::abs(xbar.effective()(i, j) - a(i, j)), step);
}

TEST(Crossbar, MultiplyMatchesEffectiveMath) {
  Rng rng(6);
  const Matrix a = random_nonneg(7, 5, rng);
  Crossbar xbar(ideal_config(), Rng(7));
  xbar.program(a);
  Vec x(5);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = xbar.multiply(x);
  const Vec expected = gemv(xbar.effective(), x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-12);
}

TEST(Crossbar, MultiplyTransposedMatchesEffectiveMath) {
  Rng rng(8);
  const Matrix a = random_nonneg(4, 9, rng);
  Crossbar xbar(ideal_config(), Rng(9));
  xbar.program(a);
  Vec x(4);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = xbar.multiply_transposed(x);
  const Vec expected = gemv_transposed(xbar.effective(), x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-12);
}

TEST(Crossbar, EightBitIoBoundsMvmError) {
  Rng rng(10);
  const Matrix a = random_nonneg(12, 12, rng);
  CrossbarConfig config = ideal_config();
  config.io_bits = 8;
  Crossbar xbar(config, Rng(11));
  xbar.program(a);
  Vec x(12);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = xbar.multiply(x);
  const Vec exact = gemv(xbar.effective(), x);
  // Input quantization error per element <= ||x||inf/254, amplified by row
  // sums; output adds <= ||y||inf/254.
  const double bound =
      a.inf_norm() * norm_inf(x) / 254.0 + norm_inf(exact) / 254.0 + 1e-9;
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_LE(std::abs(y[i] - exact[i]), bound);
}

TEST(Crossbar, SolveRoundTripsWithMultiply) {
  Rng rng(12);
  Matrix a = random_nonneg(6, 6, rng);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 6.0;  // well-conditioned
  Crossbar xbar(ideal_config(), Rng(13));
  xbar.program(a);
  Vec b(6);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = xbar.solve(b);
  ASSERT_TRUE(x.has_value());
  const Vec back = gemv(xbar.effective(), *x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(Crossbar, SolveRequiresSquare) {
  Crossbar xbar(ideal_config(), Rng(14));
  xbar.program(Matrix(3, 4, 1.0));
  EXPECT_THROW((void)xbar.solve(Vec(3, 1.0)), ContractViolation);
}

TEST(Crossbar, SolveReportsSingularArray) {
  Crossbar xbar(ideal_config(), Rng(15));
  // Two identical rows: singular regardless of mapping.
  Matrix a{{1.0, 2.0}, {1.0, 2.0}};
  xbar.program(a);
  EXPECT_FALSE(xbar.solve(Vec{1.0, 1.0}).has_value());
}

TEST(Crossbar, UpdateBlockRewritesOnlyChangedCells) {
  Rng rng(16);
  const Matrix a = random_nonneg(8, 8, rng);
  CrossbarConfig config = ideal_config();
  config.conductance_levels = 256;
  Crossbar xbar(config, Rng(17));
  xbar.program(a);
  xbar.reset_stats();

  // Re-writing the same values: no level changes, no cells written.
  xbar.update_block(0, 0, a.block(0, 0, 4, 4));
  EXPECT_EQ(xbar.stats().cells_written, 0u);

  // Changing one cell by a large amount writes exactly one cell.
  Matrix cell(1, 1);
  cell(0, 0) = a(2, 3) < 1.0 ? 1.9 : 0.05;
  xbar.update_block(2, 3, cell);
  EXPECT_EQ(xbar.stats().cells_written, 1u);
  EXPECT_GT(xbar.stats().write_pulses, 0u);
}

TEST(Crossbar, ExceedingFullScaleForcesReprogram) {
  Rng rng(18);
  const Matrix a = random_nonneg(5, 5, rng);
  Crossbar xbar(ideal_config(), Rng(19));
  xbar.program(a);
  const auto programs_before = xbar.stats().full_programs;
  Matrix cell(1, 1);
  cell(0, 0) = a.max_abs() * 10.0;
  xbar.update_block(1, 1, cell);
  EXPECT_EQ(xbar.stats().full_programs, programs_before + 1);
  EXPECT_NEAR(xbar.effective()(1, 1), cell(0, 0), 1e-4 * cell(0, 0));
}

TEST(Crossbar, FullScaleHintAvoidsReprogram) {
  Rng rng(20);
  const Matrix a = random_nonneg(5, 5, rng);
  Crossbar xbar(ideal_config(), Rng(21));
  xbar.program(a, 10.0 * a.max_abs());
  const auto programs_before = xbar.stats().full_programs;
  Matrix cell(1, 1);
  cell(0, 0) = a.max_abs() * 5.0;
  xbar.update_block(1, 1, cell);
  EXPECT_EQ(xbar.stats().full_programs, programs_before);
}

TEST(Crossbar, VariationPerturbsWithinEq18Bounds) {
  Rng rng(22);
  const Matrix a = random_nonneg(16, 16, rng);
  CrossbarConfig config = ideal_config();
  config.variation = mem::VariationModel::uniform(0.10);
  Crossbar xbar(config, Rng(23));
  xbar.program(a);
  double worst_rel = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) < 0.05) continue;  // skip near-zero cells
      const double rel = std::abs(xbar.effective()(i, j) - a(i, j)) / a(i, j);
      // Conductance variation of 10% translates to ~10% logical variation
      // (plus a small g_min offset effect).
      EXPECT_LE(rel, 0.115);
      worst_rel = std::max(worst_rel, rel);
    }
  EXPECT_GT(worst_rel, 0.01);  // variation is actually present
}

TEST(Crossbar, ReprogramRedrawsVariation) {
  Rng rng(24);
  const Matrix a = random_nonneg(6, 6, rng);
  CrossbarConfig config = ideal_config();
  config.variation = mem::VariationModel::uniform(0.10);
  Crossbar xbar(config, Rng(25));
  xbar.program(a);
  const Matrix first = xbar.effective();
  xbar.program(a);  // the paper's re-solve scheme relies on fresh draws
  EXPECT_NE(xbar.effective(), first);
}

TEST(Crossbar, SenseDividerAttenuatesWhenUncompensated) {
  Rng rng(26);
  const Matrix a = random_nonneg(4, 4, rng);
  CrossbarConfig config = ideal_config();
  config.compensate_sense_divider = false;
  Crossbar xbar(config, Rng(27));
  xbar.program(a);
  Vec x(4, 1.0);
  const Vec attenuated = xbar.multiply(x);
  const Vec exact = gemv(xbar.effective(), x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::abs(attenuated[i]), std::abs(exact[i]) + 1e-15);
  }
}

TEST(Crossbar, StatsCountOperations) {
  Rng rng(28);
  Matrix a = random_nonneg(5, 5, rng);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 5.0;
  Crossbar xbar(ideal_config(), Rng(29));
  xbar.program(a);
  EXPECT_EQ(xbar.stats().full_programs, 1u);
  (void)xbar.multiply(Vec(5, 1.0));
  (void)xbar.multiply(Vec(5, 0.5));
  (void)xbar.solve(Vec(5, 1.0));
  EXPECT_EQ(xbar.stats().mvm_ops, 2u);
  EXPECT_EQ(xbar.stats().solve_ops, 1u);
  xbar.reset_stats();
  EXPECT_EQ(xbar.stats().mvm_ops, 0u);
}

TEST(Crossbar, IrDropDegradesFarCells) {
  CrossbarConfig config = ideal_config();
  config.line_resistance_ohm = 2.0;
  Crossbar xbar(config, Rng(40));
  xbar.program(Matrix(16, 16, 1.0));
  // Every cell reads low; the far corner reads lowest.
  EXPECT_LT(xbar.effective()(0, 0), 1.0);
  EXPECT_LT(xbar.effective()(15, 15), xbar.effective()(0, 0));
  // Monotone along a row.
  for (std::size_t j = 1; j < 16; ++j)
    EXPECT_LE(xbar.effective()(0, j), xbar.effective()(0, j - 1) + 1e-12);
}

TEST(Crossbar, ZeroLineResistanceIsIdeal) {
  CrossbarConfig config = ideal_config();
  config.line_resistance_ohm = 0.0;
  Crossbar xbar(config, Rng(41));
  xbar.program(Matrix(8, 8, 1.0));
  EXPECT_NEAR(xbar.effective()(7, 7), 1.0, 1e-5);
}

TEST(Crossbar, SparseProgramSkipsStructuralZeros) {
  Matrix a(10, 10);
  a(2, 3) = 1.0;
  a(7, 1) = 0.5;
  Crossbar xbar(ideal_config(), Rng(42));
  xbar.program(a);
  EXPECT_EQ(xbar.stats().cells_written, 2u);  // only the nonzeros
  // A reprogram that zeroes an occupied cell must write (erase) it.
  Matrix b(10, 10);
  b(7, 1) = 0.5;
  xbar.program(b);
  // cell (2,3) erased + cell (7,1) force-rewritten.
  EXPECT_EQ(xbar.stats().cells_written, 4u);
  EXPECT_EQ(xbar.effective()(2, 3), 0.0);
}

TEST(Crossbar, IoBoundarySelectsConversions) {
  Rng rng(50);
  const Matrix a = random_nonneg(10, 10, rng);
  CrossbarConfig config = ideal_config();
  config.io_bits = 4;  // coarse converter makes the difference visible
  Crossbar xbar(config, Rng(51));
  xbar.program(a);
  Vec x(10);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  const Vec exact = gemv(xbar.effective(), x);
  const Vec none = xbar.multiply(x, Crossbar::IoBoundary::kNone);
  const Vec both = xbar.multiply(x, Crossbar::IoBoundary::kBoth);
  // kNone is the pure analog result.
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(none[i], exact[i], 1e-12);
  // kBoth differs through the coarse DAC/ADC.
  double delta = 0.0;
  for (std::size_t i = 0; i < 10; ++i) delta += std::abs(both[i] - exact[i]);
  EXPECT_GT(delta, 0.0);

  // Input-only and output-only land between the two extremes.
  const Vec in_only = xbar.multiply(x, Crossbar::IoBoundary::kInputOnly);
  const Vec quantized_input = Quantizer(4).quantized(x);
  const Vec expected_in = gemv(xbar.effective(), quantized_input);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_NEAR(in_only[i], expected_in[i], 1e-12);
}

TEST(Crossbar, SolveIoBoundary) {
  Rng rng(52);
  Matrix a = random_nonneg(6, 6, rng);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 6.0;
  CrossbarConfig config = ideal_config();
  config.io_bits = 4;
  Crossbar xbar(config, Rng(53));
  xbar.program(a);
  Vec b(6);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto analog = xbar.solve(b, Crossbar::IoBoundary::kNone);
  ASSERT_TRUE(analog.has_value());
  const Vec back = gemv(xbar.effective(), *analog);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(CrossbarConfig, ValidatesParameters) {
  CrossbarConfig config;
  config.conductance_levels = 1;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.sense_conductance = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config = {};
  config.io_bits = 99;
  EXPECT_THROW(config.validate(), ConfigError);
}

// Pins the half-select disturb contract of update_block's two paths (§3.3):
// incremental in-range writes stress the written cell's row/column
// neighbours, while the full-scale re-map path (fallback to program()) is
// exempt — the erase-all re-program force-writes every occupied cell, so any
// disturb inflicted mid-sequence is overwritten before the call returns.
TEST(Crossbar, UpdateBlockDisturbOnlyOnTheIncrementalPath) {
  CrossbarConfig config = ideal_config();  // exact writes isolate the disturb
  config.write_scheme.half_select_disturb = 1e-3;
  Crossbar xbar(config, Rng(50));
  Rng data_rng(51);
  const Matrix a = random_nonneg(6, 6, data_rng);
  xbar.program(a);

  const auto max_deviation_from = [&](const Matrix& ideal) {
    double worst = 0.0;
    for (std::size_t i = 0; i < ideal.rows(); ++i)
      for (std::size_t j = 0; j < ideal.cols(); ++j)
        worst = std::max(worst,
                         std::abs(xbar.effective()(i, j) - ideal(i, j)));
    return worst;
  };
  // Freshly programmed: only conductance quantization (~1e-5), no disturb.
  EXPECT_LT(max_deviation_from(a), 1e-4);

  // Incremental path: an in-range cell write leaves its row/column
  // neighbours measurably off their ideal values.
  Matrix ideal_after = a;
  ideal_after(2, 3) = 0.5;
  xbar.update_cell(2, 3, 0.5);
  EXPECT_GT(max_deviation_from(ideal_after), 1e-4);
  // A cell sharing neither the row nor the column keeps its exact level.
  EXPECT_NEAR(xbar.effective()(0, 0), a(0, 0), 1e-4);

  // Full-scale re-map path: a value beyond the mapped full scale forces the
  // erase-all re-program, which also wipes the accumulated disturb — every
  // cell is back at its quantized ideal.
  const double overflow = 10.0 * a.max_abs();
  ideal_after(2, 3) = overflow;
  xbar.update_cell(2, 3, overflow);
  EXPECT_GT(xbar.stats().full_programs, 1u);
  EXPECT_LT(max_deviation_from(ideal_after), 1e-3);
  EXPECT_NEAR(xbar.effective()(2, 2), a(2, 2), 1e-4 * (1.0 + a(2, 2)));
}

TEST(CrossbarSettleCache, NoOpRewriteKeepsTheFactorization) {
  // Rewriting a cell to a value that quantizes to its current level is a
  // physical no-op; the cached factorization must survive it (the thrash
  // this PR removes: every solve used to refactor after ANY write).
  CrossbarConfig config = ideal_config();
  config.conductance_levels = 256;  // coarse levels: easy no-op writes
  Rng rng(21);
  const Matrix a = random_nonneg(6, 6, rng);
  Crossbar xbar(config, Rng(22));
  xbar.program(a);
  const Vec b{1, 2, 3, 4, 5, 6};
  ASSERT_TRUE(xbar.solve(b).has_value());
  EXPECT_EQ(xbar.settle_cache_stats().full_factorizations, 1u);

  // A tiny perturbation rounds to the same 8-bit level: no write happens.
  const std::size_t written_before = xbar.stats().cells_written;
  xbar.update_cell(2, 2, a(2, 2) * (1.0 + 1e-9));
  ASSERT_EQ(xbar.stats().cells_written, written_before);
  ASSERT_TRUE(xbar.solve(b).has_value());
  EXPECT_EQ(xbar.settle_cache_stats().full_factorizations, 1u);
  EXPECT_GE(xbar.settle_cache_stats().prepare_hits, 1u);
}

TEST(CrossbarSettleCache, RealWriteInvalidatesTheFactorization) {
  Rng rng(23);
  const Matrix a = random_nonneg(6, 6, rng);
  Crossbar xbar(ideal_config(), Rng(24));
  xbar.program(a);
  const Vec b{1, 2, 3, 4, 5, 6};
  ASSERT_TRUE(xbar.solve(b).has_value());
  EXPECT_EQ(xbar.settle_cache_stats().full_factorizations, 1u);

  xbar.update_cell(1, 4, a(1, 4) + 0.5);  // genuinely new level
  const auto x = xbar.solve(b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(xbar.settle_cache_stats().full_factorizations, 2u);
  // And the solve reflects the new matrix, not the stale factor.
  const Vec expected = LuFactorization(xbar.effective()).solve(b);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR((*x)[i], expected[i], 1e-12);
}

TEST(CrossbarSettleCache, ReuseModeMatchesExactWithinTolerance) {
  // Twin crossbars, identical seeds: one settles exactly (full refactor),
  // the other through the rank-k correction. The writes are identical, so
  // the effective matrices agree and the solves must match to refinement
  // accuracy.
  CrossbarConfig exact_cfg = ideal_config();
  exact_cfg.settle_mode = SettleMode::kExact;
  CrossbarConfig reuse_cfg = ideal_config();
  reuse_cfg.settle_mode = SettleMode::kReuse;
  Rng data_rng(25);
  const std::size_t n = 12;
  const Matrix a = random_nonneg(n, n, data_rng);
  Crossbar exact(exact_cfg, Rng(26));
  Crossbar reuse(reuse_cfg, Rng(26));
  exact.program(a, 4.0 * a.max_abs());
  reuse.program(a, 4.0 * a.max_abs());

  Rng value_rng(27);
  for (std::size_t iteration = 0; iteration < 6; ++iteration) {
    // The PDIP pattern: rewrite a few diagonal cells, then settle.
    std::vector<CellUpdate> updates;
    for (std::size_t j = 0; j < 4; ++j)
      updates.push_back({j, j, value_rng.uniform(0.1, 2.0)});
    exact.update_cells(updates);
    reuse.update_cells(updates);
    ASSERT_EQ(exact.effective(), reuse.effective()) << "it " << iteration;
    Vec b(n);
    for (double& v : b) v = value_rng.uniform(-1.0, 1.0);
    const auto x_exact = exact.solve(b);
    const auto x_reuse = reuse.solve(b);
    ASSERT_TRUE(x_exact.has_value());
    ASSERT_TRUE(x_reuse.has_value());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR((*x_reuse)[i], (*x_exact)[i],
                  1e-9 * (1.0 + std::abs((*x_exact)[i])))
          << "row " << i << " it " << iteration;
  }
  // The reuse array must actually have exercised the incremental path.
  EXPECT_GE(reuse.settle_cache_stats().incremental_updates, 4u);
  EXPECT_LT(reuse.settle_cache_stats().full_factorizations,
            exact.settle_cache_stats().full_factorizations);
}

TEST(CrossbarSettleCache, BatchedUpdateMatchesSequentialUpdates) {
  // update_cells must be write-for-write identical to an update_cell loop
  // (same RNG draw order, same quantization, same remap points).
  Rng data_rng(28);
  const std::size_t n = 8;
  const Matrix a = random_nonneg(n, n, data_rng);
  CrossbarConfig config = ideal_config();
  config.variation = mem::VariationModel::uniform(0.05);
  Crossbar batched(config, Rng(29));
  Crossbar sequential(config, Rng(29));
  batched.program(a);
  sequential.program(a);

  std::vector<CellUpdate> updates;
  Rng value_rng(30);
  for (std::size_t j = 0; j < n; ++j)
    updates.push_back({j, j, value_rng.uniform(0.0, 3.0)});
  // One overflowing value exercises the mid-batch re-map path too.
  updates[5].value = 10.0 * a.max_abs();

  batched.update_cells(updates);
  for (const CellUpdate& u : updates)
    sequential.update_cell(u.row, u.col, u.value);

  ASSERT_EQ(batched.effective(), sequential.effective());
  EXPECT_EQ(batched.stats().cells_written, sequential.stats().cells_written);
  EXPECT_EQ(batched.stats().write_pulses, sequential.stats().write_pulses);
  EXPECT_EQ(batched.stats().full_programs, sequential.stats().full_programs);
}

TEST(CrossbarSettleCache, FailedSettleAccounting) {
  // A singular effective array fails to settle: the failure is counted,
  // but no solve op (and no settle energy) is charged.
  Crossbar xbar(ideal_config(), Rng(31));
  xbar.program(Matrix(4, 4, 1.0));  // rank-1: singular
  const Vec b{1, 1, 1, 1};
  EXPECT_FALSE(xbar.solve(b).has_value());
  EXPECT_EQ(xbar.stats().failed_settles, 1u);
  EXPECT_EQ(xbar.stats().solve_ops, 0u);

  // Writing the diagonal makes it solvable again; counters resume.
  std::vector<CellUpdate> diagonal;
  for (std::size_t j = 0; j < 4; ++j) diagonal.push_back({j, j, 5.0});
  xbar.update_cells(diagonal);
  EXPECT_TRUE(xbar.solve(b).has_value());
  EXPECT_EQ(xbar.stats().failed_settles, 1u);
  EXPECT_EQ(xbar.stats().solve_ops, 1u);
}

}  // namespace
}  // namespace memlp::xbar
