// Tests for the LP presolve reductions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/sparse.hpp"
#include "lp/generator.hpp"
#include "lp/presolve.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::lp {
namespace {

TEST(Presolve, DropsRedundantZeroRow) {
  LinearProgram problem;
  problem.a = Matrix{{1, 2}, {0, 0}, {3, 1}};
  problem.b = {4, 5, 6};  // 0 <= 5 is redundant
  problem.c = {1, 1};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_constraints(), 2u);
  EXPECT_EQ(result.removed_rows(problem), 1u);
}

TEST(Presolve, ZeroRowWithNegativeRhsIsInfeasible) {
  LinearProgram problem;
  problem.a = Matrix{{1, 2}, {0, 0}};
  problem.b = {4, -1};  // 0 <= -1: contradiction
  problem.c = {1, 1};
  EXPECT_EQ(presolve(problem).outcome, PresolveResult::Outcome::kInfeasible);
}

TEST(Presolve, DuplicateRowsKeepTighterBound) {
  LinearProgram problem;
  problem.a = Matrix{{1, 1}, {1, 1}, {2, 0}};
  problem.b = {10, 4, 6};  // x1+x2 <= 4 dominates <= 10
  problem.c = {1, 1};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_constraints(), 2u);
  // The kept duplicate carries b = 4.
  bool found_tight = false;
  for (double b : result.reduced.b)
    if (b == 4.0) found_tight = true;
  EXPECT_TRUE(found_tight);
}

TEST(Presolve, EmptyColumnWithPositiveProfitIsUnbounded) {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {2, 0}};
  problem.b = {4, 6};
  problem.c = {1, 3};  // x2 unconstrained with c2 > 0
  EXPECT_EQ(presolve(problem).outcome, PresolveResult::Outcome::kUnbounded);
}

TEST(Presolve, EmptyColumnWithNonPositiveProfitIsDropped) {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {2, 0}};
  problem.b = {4, 6};
  problem.c = {1, -3};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_variables(), 1u);
  // Restoration puts the dropped variable back at zero.
  const Vec x = result.restore(Vec{2.0}, 2);
  EXPECT_EQ(x, (Vec{2.0, 0.0}));
}

TEST(Presolve, DuplicateTripletEntriesAreSummedBeforeReduction) {
  // Coordinate input with repeated (0,0) entries cancelling to zero: the
  // canonical CSR form drops the entry, which empties row 0, which presolve
  // then removes as redundant (b >= 0).
  LinearProgram problem;
  problem.a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  problem.b = {3.0, 4.0};
  problem.c = {1.0, 1.0};
  EXPECT_EQ(problem.a.nnz(), 2u);  // the cancelled duplicate is not stored
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.removed_rows(problem), 1u);
  EXPECT_EQ(result.kept_rows, (std::vector<std::size_t>{1}));
}

TEST(Presolve, DuplicateTripletsAccumulateIntoOneEntry) {
  // Repeated coordinates that do NOT cancel must sum into a single stored
  // entry, and presolve must act on the summed value.
  LinearProgram problem;
  problem.a = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 0.5}, {0, 1, 1.5}, {1, 0, 1.0}, {1, 1, 1.0}});
  problem.b = {0.0, 4.0};
  problem.c = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(problem.a(0, 1), 2.0);
  // Row 0 is the singleton 2*x2 <= 0: x2 is fixed at zero and eliminated.
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.kept_columns, (std::vector<std::size_t>{0}));
  EXPECT_EQ(result.removed_rows(problem), 1u);
}

TEST(Presolve, FixedVariableEliminationCascades) {
  // Singleton row fixes x3 = 0; eliminating that column empties row 2,
  // which the next fixed-point pass drops as well.
  LinearProgram problem;
  problem.a = Matrix{{1, 1, 0}, {0, 0, 2}, {0, 0, 5}};
  problem.b = {4, 0, 3};
  problem.c = {1, 1, 1};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.kept_rows, (std::vector<std::size_t>{0}));
  EXPECT_EQ(result.kept_columns, (std::vector<std::size_t>{0, 1}));
  const Vec x = result.restore(Vec{2.0, 2.0}, 3);
  EXPECT_EQ(x, (Vec{2.0, 2.0, 0.0}));
}

TEST(Presolve, SingletonRowWithNegativeRhsIsInfeasible) {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 3}};
  problem.b = {4, -1};  // 3*x2 <= -1 with x2 >= 0: contradiction
  problem.c = {1, 1};
  EXPECT_EQ(presolve(problem).outcome, PresolveResult::Outcome::kInfeasible);
}

TEST(Presolve, ReducedMatrixIsCanonicalCsr) {
  // Whatever the input pattern (stored zeros, summed duplicates, dropped
  // rows/columns), the reduced matrix must round-trip through its dense
  // view unchanged — the defining property of canonical CSR form (sorted
  // columns, no stored zeros, duplicates merged).
  LinearProgram problem;
  problem.a = CsrMatrix::from_triplets(
      3, 3, {{0, 2, 1.0}, {0, 0, 2.0}, {1, 1, 1.0}, {1, 1, -1.0},
             {2, 0, 1.0}, {2, 2, 3.0}});
  problem.b = {5.0, 2.0, 6.0};
  problem.c = {1.0, -1.0, 1.0};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  const CsrMatrix& reduced = result.reduced.a.csr();
  EXPECT_EQ(reduced, CsrMatrix::from_dense(result.reduced.a.dense()));
  // Column 1 died (its only entries cancelled, and c[1] < 0); row 1
  // emptied and was dropped.
  EXPECT_EQ(result.kept_columns, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(result.kept_rows, (std::vector<std::size_t>{0, 2}));
}

TEST(Presolve, CleanProblemIsUntouched) {
  Rng rng(1);
  GeneratorOptions options;
  options.constraints = 16;
  const auto problem = random_feasible(options, rng);
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.a, problem.a);
  EXPECT_EQ(result.removed_rows(problem), 0u);
  EXPECT_EQ(result.removed_columns(problem), 0u);
}

// Property: presolve + solve + restore == direct solve.
class PresolveEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PresolveEquivalence, ObjectiveIsPreserved) {
  Rng rng(800 + GetParam());
  GeneratorOptions options;
  options.constraints = GetParam();
  options.sparsity = 0.4;
  LinearProgram problem = random_feasible(options, rng);
  // Inject removable structure: a zero row, a duplicate row, a dead column.
  const std::size_t m = problem.num_constraints();
  Matrix a = problem.a.dense();
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    a(m - 1, j) = 0.0;                           // zero row
    a(m - 2, j) = a(0, j);                       // duplicate of row 0
  }
  problem.b[m - 1] = 1.0;
  problem.b[m - 2] = problem.b[0] + 1.0;         // looser duplicate
  const std::size_t dead = problem.num_variables() - 1;
  for (std::size_t i = 0; i < m; ++i) a(i, dead) = 0.0;
  problem.a = std::move(a);
  problem.c[dead] = -1.0;

  const auto direct = solvers::solve_simplex(problem);
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);

  const auto pre = presolve(problem);
  ASSERT_EQ(pre.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_GE(pre.removed_rows(problem), 2u);
  EXPECT_GE(pre.removed_columns(problem), 1u);
  const auto reduced_solution = solvers::solve_simplex(pre.reduced);
  ASSERT_EQ(reduced_solution.status, SolveStatus::kOptimal);
  const Vec x =
      pre.restore(reduced_solution.x, problem.num_variables());
  EXPECT_NEAR(problem.objective(x), direct.objective,
              1e-7 * (1.0 + std::abs(direct.objective)));
  EXPECT_TRUE(problem.satisfies_constraints(x, 1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveEquivalence,
                         ::testing::Values(6, 12, 24, 48));

}  // namespace
}  // namespace memlp::lp
