// Tests for the LP presolve reductions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "lp/generator.hpp"
#include "lp/presolve.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::lp {
namespace {

TEST(Presolve, DropsRedundantZeroRow) {
  LinearProgram problem;
  problem.a = Matrix{{1, 2}, {0, 0}, {3, 1}};
  problem.b = {4, 5, 6};  // 0 <= 5 is redundant
  problem.c = {1, 1};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_constraints(), 2u);
  EXPECT_EQ(result.removed_rows(problem), 1u);
}

TEST(Presolve, ZeroRowWithNegativeRhsIsInfeasible) {
  LinearProgram problem;
  problem.a = Matrix{{1, 2}, {0, 0}};
  problem.b = {4, -1};  // 0 <= -1: contradiction
  problem.c = {1, 1};
  EXPECT_EQ(presolve(problem).outcome, PresolveResult::Outcome::kInfeasible);
}

TEST(Presolve, DuplicateRowsKeepTighterBound) {
  LinearProgram problem;
  problem.a = Matrix{{1, 1}, {1, 1}, {2, 0}};
  problem.b = {10, 4, 6};  // x1+x2 <= 4 dominates <= 10
  problem.c = {1, 1};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_constraints(), 2u);
  // The kept duplicate carries b = 4.
  bool found_tight = false;
  for (double b : result.reduced.b)
    if (b == 4.0) found_tight = true;
  EXPECT_TRUE(found_tight);
}

TEST(Presolve, EmptyColumnWithPositiveProfitIsUnbounded) {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {2, 0}};
  problem.b = {4, 6};
  problem.c = {1, 3};  // x2 unconstrained with c2 > 0
  EXPECT_EQ(presolve(problem).outcome, PresolveResult::Outcome::kUnbounded);
}

TEST(Presolve, EmptyColumnWithNonPositiveProfitIsDropped) {
  LinearProgram problem;
  problem.a = Matrix{{1, 0}, {2, 0}};
  problem.b = {4, 6};
  problem.c = {1, -3};
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.num_variables(), 1u);
  // Restoration puts the dropped variable back at zero.
  const Vec x = result.restore(Vec{2.0}, 2);
  EXPECT_EQ(x, (Vec{2.0, 0.0}));
}

TEST(Presolve, CleanProblemIsUntouched) {
  Rng rng(1);
  GeneratorOptions options;
  options.constraints = 16;
  const auto problem = random_feasible(options, rng);
  const auto result = presolve(problem);
  ASSERT_EQ(result.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_EQ(result.reduced.a, problem.a);
  EXPECT_EQ(result.removed_rows(problem), 0u);
  EXPECT_EQ(result.removed_columns(problem), 0u);
}

// Property: presolve + solve + restore == direct solve.
class PresolveEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PresolveEquivalence, ObjectiveIsPreserved) {
  Rng rng(800 + GetParam());
  GeneratorOptions options;
  options.constraints = GetParam();
  options.sparsity = 0.4;
  LinearProgram problem = random_feasible(options, rng);
  // Inject removable structure: a zero row, a duplicate row, a dead column.
  const std::size_t m = problem.num_constraints();
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    problem.a(m - 1, j) = 0.0;                   // zero row
    problem.a(m - 2, j) = problem.a(0, j);       // duplicate of row 0
  }
  problem.b[m - 1] = 1.0;
  problem.b[m - 2] = problem.b[0] + 1.0;         // looser duplicate
  const std::size_t dead = problem.num_variables() - 1;
  for (std::size_t i = 0; i < m; ++i) problem.a(i, dead) = 0.0;
  problem.c[dead] = -1.0;

  const auto direct = solvers::solve_simplex(problem);
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);

  const auto pre = presolve(problem);
  ASSERT_EQ(pre.outcome, PresolveResult::Outcome::kReduced);
  EXPECT_GE(pre.removed_rows(problem), 2u);
  EXPECT_GE(pre.removed_columns(problem), 1u);
  const auto reduced_solution = solvers::solve_simplex(pre.reduced);
  ASSERT_EQ(reduced_solution.status, SolveStatus::kOptimal);
  const Vec x =
      pre.restore(reduced_solution.x, problem.num_variables());
  EXPECT_NEAR(problem.objective(x), direct.objective,
              1e-7 * (1.0 + std::abs(direct.objective)));
  EXPECT_TRUE(problem.satisfies_constraints(x, 1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PresolveEquivalence,
                         ::testing::Values(6, 12, 24, 48));

}  // namespace
}  // namespace memlp::lp
