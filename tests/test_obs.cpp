// Tests for memlp::obs — trace sinks, typed records, and the metrics
// registry — plus integration checks that the solvers' instrumentation
// matches what the solvers report through their results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "crossbar/crossbar.hpp"
#include "linalg/matrix.hpp"
#include "lp/problem.hpp"
#include "lp/result.hpp"
#include "memristor/variation.hpp"
#include "obs/cost_ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "perf/cost_tree.hpp"
#include "perf/hardware_model.hpp"

namespace memlp::obs {
namespace {

// --- minimal JSON parser (flat objects only) --------------------------------
//
// The JSONL sink emits one flat object per line: string keys, values that
// are strings, numbers, or booleans. This parser is deliberately strict —
// any structural surprise fails the round-trip test.

bool decode_json_string(const std::string& s, std::size_t& i,
                        std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) return false;
      const char escape = s[i++];
      switch (escape) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) return false;
          c = static_cast<char>(std::stoi(s.substr(i, 4), nullptr, 16));
          i += 4;
          break;
        }
        default:
          return false;
      }
    }
    *out += c;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

/// Parses `line` into key → value, where string values are decoded and
/// number/boolean values keep their raw token text.
bool parse_flat_json(const std::string& line,
                     std::map<std::string, std::string>* out) {
  out->clear();
  std::size_t i = 0;
  if (line.empty() || line[i] != '{') return false;
  ++i;
  if (i < line.size() && line[i] == '}') return true;
  while (i < line.size()) {
    std::string key;
    if (!decode_json_string(line, i, &key)) return false;
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!decode_json_string(line, i, &value)) return false;
    } else {
      while (i < line.size() && line[i] != ',' && line[i] != '}')
        value += line[i++];
      if (value.empty()) return false;
    }
    (*out)[key] = value;
    if (i >= line.size()) return false;
    if (line[i] == '}') return i == line.size() - 1;
    if (line[i] != ',') return false;
    ++i;
  }
  return false;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

// --- Event / record formatting ----------------------------------------------

TEST(Event, ToJsonEscapesAndTypes) {
  Event event("demo");
  event.with("text", "a \"b\"\nc")
      .with("count", std::size_t{42})
      .with("ratio", 0.5)
      .with("flag", true);
  std::map<std::string, std::string> fields;
  ASSERT_TRUE(parse_flat_json(event.to_json(), &fields)) << event.to_json();
  EXPECT_EQ(fields["type"], "demo");
  EXPECT_EQ(fields["text"], "a \"b\"\nc");
  EXPECT_EQ(fields["count"], "42");
  EXPECT_EQ(fields["flag"], "true");
  EXPECT_DOUBLE_EQ(std::stod(fields["ratio"]), 0.5);
}

TEST(Event, NumberLookupWidensIntegers) {
  Event event("demo");
  event.with("i", 7).with("d", 2.5).with("s", "nope");
  EXPECT_DOUBLE_EQ(event.number("i"), 7.0);
  EXPECT_DOUBLE_EQ(event.number("d"), 2.5);
  EXPECT_DOUBLE_EQ(event.number("s", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(event.number("missing", -1.0), -1.0);
  EXPECT_EQ(event.find("missing"), nullptr);
}

TEST(IterationRecord, OmitsUnsetFields) {
  IterationRecord record;
  record.solver = "pdip";
  record.iteration = 3;
  record.mu = 0.25;
  const Event event = record.to_event();
  EXPECT_NE(event.find("mu"), nullptr);
  EXPECT_EQ(event.find("gap"), nullptr);
  EXPECT_EQ(event.find("attempt"), nullptr);  // 0 = not applicable
  EXPECT_EQ(event.find("condition"), nullptr);
}

// --- sinks ------------------------------------------------------------------

TEST(JsonlSink, RoundTripsEveryLine) {
  const std::string path = temp_path("trace_roundtrip.jsonl");
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    for (int i = 0; i < 10; ++i) {
      Event event("tick");
      event.with("index", i).with("label", "it\"em\n" + std::to_string(i));
      sink.emit(event);
    }
    sink.flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int parsed = 0;
  double previous_ts = -1.0;
  while (std::getline(in, line)) {
    std::map<std::string, std::string> fields;
    ASSERT_TRUE(parse_flat_json(line, &fields)) << line;
    EXPECT_EQ(fields["type"], "tick");
    EXPECT_EQ(fields["seq"], std::to_string(parsed));
    EXPECT_EQ(fields["index"], std::to_string(parsed));
    EXPECT_EQ(fields["label"], "it\"em\n" + std::to_string(parsed));
    const double ts = std::stod(fields.at("ts"));
    EXPECT_GE(ts, previous_ts);
    previous_ts = ts;
    ++parsed;
  }
  EXPECT_EQ(parsed, 10);
  std::remove(path.c_str());
}

TEST(CsvSink, EmitsLongFormat) {
  const std::string path = temp_path("trace.csv");
  {
    CsvTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    Event event("sample");
    event.with("a", 1).with("b", "two");
    sink.emit(event);
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + one row per field
  EXPECT_EQ(lines[0], "seq,ts,type,key,value");
  EXPECT_NE(lines[1].find("sample,a,1"), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("sample,b,two"), std::string::npos) << lines[2];
  std::remove(path.c_str());
}

TEST(OpenTraceSink, SelectsFormatBySuffix) {
  const std::string csv = temp_path("by_suffix.csv");
  const std::string jsonl = temp_path("by_suffix.jsonl");
  auto csv_sink = open_trace_sink(csv);
  auto jsonl_sink = open_trace_sink(jsonl);
  ASSERT_NE(csv_sink, nullptr);
  ASSERT_NE(jsonl_sink, nullptr);
  EXPECT_NE(dynamic_cast<CsvTraceSink*>(csv_sink.get()), nullptr);
  EXPECT_NE(dynamic_cast<JsonlTraceSink*>(jsonl_sink.get()), nullptr);
  EXPECT_EQ(open_trace_sink("/nonexistent-dir-xyz/trace.jsonl"), nullptr);
  csv_sink.reset();
  jsonl_sink.reset();
  std::remove(csv.c_str());
  std::remove(jsonl.c_str());
}

TEST(TeeSink, FansOutToBothSinks) {
  MemoryTraceSink first;
  MemoryTraceSink second;
  TeeTraceSink tee(&first, &second);
  tee.emit(Event("ping"));
  EXPECT_EQ(first.events().size(), 1u);
  EXPECT_EQ(second.events().size(), 1u);
}

TEST(PhaseSpan, EmitsAnnotatedPhaseEvent) {
  MemoryTraceSink sink;
  {
    PhaseSpan span(&sink, "test", "warmup");
    ASSERT_TRUE(span.active());
    span.note("cells", 12);
    span.on_close([](PhaseSpan& s) { s.note("hooked", true); });
  }
  const auto events = sink.events_of("phase");
  ASSERT_EQ(events.size(), 1u);
  const Event& event = events[0];
  EXPECT_EQ(event.number("cells"), 12.0);
  ASSERT_NE(event.find("phase"), nullptr);
  EXPECT_NE(event.find("hooked"), nullptr);
  EXPECT_GE(event.number("wall_seconds", -1.0), 0.0);
}

TEST(PhaseSpan, InertWithoutSink) {
  PhaseSpan span(nullptr, "test", "noop");
  EXPECT_FALSE(span.active());
  span.note("ignored", 1);
  span.on_close([](PhaseSpan&) { FAIL() << "hook ran without a sink"; });
  span.close();
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CountsExactlyUnderContention) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&registry, t] {
      // Half the threads hammer a shared counter, the rest also create
      // per-thread names to exercise the lookup lock.
      auto& shared = registry.counter("shared");
      const std::string own = "thread." + std::to_string(t);
      for (int i = 0; i < kIncrements; ++i) {
        shared.add();
        registry.counter(own).add();
        registry.gauge("last_thread").set(static_cast<double>(t));
      }
    });
  for (auto& worker : workers) worker.join();

  const auto counters = registry.counter_values();
  EXPECT_EQ(counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(counters.at("thread." + std::to_string(t)),
              static_cast<std::uint64_t>(kIncrements));
  const double last = registry.gauge_values().at("last_thread");
  EXPECT_GE(last, 0.0);
  EXPECT_LT(last, kThreads);
}

TEST(MetricsRegistry, SnapshotExports) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.level").set(1.5);

  // The flat `metrics` event round-trips through the JSONL format.
  std::map<std::string, std::string> fields;
  const Event event = registry.snapshot_event();
  ASSERT_TRUE(parse_flat_json(event.to_json(), &fields)) << event.to_json();
  EXPECT_EQ(fields.at("type"), "metrics");
  EXPECT_EQ(fields.at("a.count"), "3");
  EXPECT_DOUBLE_EQ(std::stod(fields.at("b.level")), 1.5);

  // The nested JSON export names both sections.
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":3}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\":{\"b.level\":1.5}"), std::string::npos)
      << json;

  registry.reset();
  EXPECT_EQ(registry.counter_values().at("a.count"), 0u);
}

TEST(MetricsRegistry, HistogramQuantilesAndExport) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("solve_seconds");
  for (int i = 100; i >= 1; --i) histogram.observe(i * 0.001);
  const auto stats = registry.histogram_values().at("solve_seconds");
  EXPECT_EQ(stats.count, 100u);
  EXPECT_NEAR(stats.total, 5.05, 1e-9);
  // Nearest-rank quantiles over 100 samples 0.001..0.100.
  EXPECT_DOUBLE_EQ(stats.p50, 0.050);
  EXPECT_DOUBLE_EQ(stats.p95, 0.095);
  EXPECT_DOUBLE_EQ(stats.p99, 0.099);
  EXPECT_DOUBLE_EQ(stats.max, 0.100);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"histograms\":{\"solve_seconds\":{\"count\":100"),
            std::string::npos)
      << json;
  registry.reset();
  EXPECT_EQ(registry.histogram_values().at("solve_seconds").count, 0u);
}

// --- crossbar pulse histogram ----------------------------------------------

TEST(CrossbarStats, PulseHistogramBuckets) {
  using Stats = xbar::CrossbarStats;
  EXPECT_EQ(Stats::pulse_bucket(0), 0u);
  EXPECT_EQ(Stats::pulse_bucket(1), 1u);
  EXPECT_EQ(Stats::pulse_bucket(2), 2u);
  EXPECT_EQ(Stats::pulse_bucket(3), 2u);
  EXPECT_EQ(Stats::pulse_bucket(4), 3u);
  EXPECT_EQ(Stats::pulse_bucket(1u << 20), Stats::kPulseHistogramBuckets - 1);

  Stats stats;
  stats.record_write(0);
  stats.record_write(1);
  stats.record_write(200);
  EXPECT_EQ(stats.cells_written, 3u);
  EXPECT_EQ(stats.write_pulses, 201u);
  std::size_t histogram_total = 0;
  for (std::size_t count : stats.pulse_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, stats.cells_written);

  Stats other = stats;
  other.record_write(5);
  const Stats delta = other.since(stats);
  EXPECT_EQ(delta.cells_written, 1u);
  EXPECT_EQ(delta.pulse_histogram[xbar::CrossbarStats::pulse_bucket(5)], 1u);
}

// --- solver integration -----------------------------------------------------

lp::LinearProgram textbook_problem() {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  return problem;
}

TEST(SolverTrace, PdipEmitsOneRecordPerIterationWithDecreasingMu) {
  MemoryTraceSink sink;
  core::PdipOptions options;
  options.trace = &sink;
  const auto result = core::solve_pdip(textbook_problem(), options);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);

  const auto iterations = sink.events_of("iteration");
  ASSERT_EQ(iterations.size(), result.iterations);
  double previous_mu = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    const Event& event = iterations[i];
    EXPECT_EQ(event.number("iteration"), static_cast<double>(i + 1));
    const double mu = event.number("mu", -1.0);
    ASSERT_GT(mu, 0.0);
    EXPECT_LT(mu, previous_mu);
    previous_mu = mu;
    EXPECT_GE(event.number("primal_inf", -1.0), 0.0);
    EXPECT_GE(event.number("dual_inf", -1.0), 0.0);
  }

  const auto summaries = sink.events_of("solve_summary");
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].number("iterations"),
            static_cast<double>(result.iterations));
  ASSERT_NE(summaries[0].find("status"), nullptr);
  EXPECT_EQ(std::get<std::string>(summaries[0].find("status")->value),
            "optimal");
}

// Regression: in predictor-corrector mode the step solves with σ·µ_mean, not
// the Eq. (8) default the record is initialized with. The traced µ must be
// the one actually solved with, tied to the traced σ and affine µ.
TEST(SolverTrace, PdipPredictorCorrectorTracesTheSolvedMu) {
  MemoryTraceSink sink;
  core::PdipOptions options;
  options.trace = &sink;
  options.predictor_corrector = true;
  const auto result = core::solve_pdip(textbook_problem(), options);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);

  const auto iterations = sink.events_of("iteration");
  ASSERT_EQ(iterations.size(), result.iterations);
  std::size_t corrected = 0;
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    const Event& event = iterations[i];
    const double sigma = event.number("sigma", -1.0);
    if (sigma < 0.0) continue;  // no affine step this iteration
    ++corrected;
    const double mu = event.number("mu", -1.0);
    const double mu_affine = event.number("mu_affine", -1.0);
    const double gap = event.number("gap", -1.0);
    ASSERT_GE(gap, 0.0);
    ASSERT_GE(mu_affine, 0.0);
    // µ = σ·µ_mean with µ_mean = gap / (n + m); textbook_problem has n = 2
    // variables and m = 3 constraints.
    const double mu_mean = gap / 5.0;
    EXPECT_DOUBLE_EQ(mu, sigma * mu_mean);
    // σ = clamp(µ_affine/µ_mean)³ — re-derivable from the traced fields.
    const double ratio = std::clamp(mu_affine / mu_mean, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(sigma, ratio * ratio * ratio);
    EXPECT_LE(sigma, 1.0);
  }
  // The stepping iterations all went through the corrector.
  EXPECT_GE(corrected, iterations.size() - 1);
}

TEST(SolverTrace, XbarPhaseDeltasMatchSolveStats) {
  MemoryTraceSink sink;
  core::XbarPdipOptions options;
  options.pdip.trace = &sink;
  options.seed = 7;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  const auto outcome = core::solve_xbar_pdip(textbook_problem(), options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);

  EXPECT_EQ(sink.events_of("iteration").size(), outcome.stats.iterations);

  const auto phases = sink.events_of("phase");
  ASSERT_GE(phases.size(), 2u);  // programming + iterations per attempt
  std::size_t programming_cells = 0;
  std::size_t total_cells = 0;
  bool saw_programming = false;
  bool saw_iterations = false;
  for (const Event& event : phases) {
    ASSERT_NE(event.find("phase"), nullptr);
    const auto& name = std::get<std::string>(event.find("phase")->value);
    const auto cells =
        static_cast<std::size_t>(event.number("xbar.cells_written"));
    total_cells += cells;
    if (name == "programming") {
      saw_programming = true;
      programming_cells += cells;
    } else if (name == "iterations") {
      saw_iterations = true;
    }
  }
  EXPECT_TRUE(saw_programming);
  EXPECT_TRUE(saw_iterations);
  EXPECT_EQ(programming_cells, outcome.stats.programming.xbar.cells_written);
  EXPECT_EQ(total_cells, outcome.stats.backend.xbar.cells_written);

  const auto summaries = sink.events_of("solve_summary");
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].number("attempts"),
            static_cast<double>(outcome.stats.attempts));
  EXPECT_EQ(summaries[0].number("system_dim"),
            static_cast<double>(outcome.stats.system_dim));
}

// The fig7 harnesses derive crossbar energy from the ledger instead of
// HardwareModel::estimate(stats); the two paths must agree. Pricing is
// linear in the counters and every analog charge site mirrors a
// HardwareStats counter, so the ledger total reproduces
// estimate() + estimate_programming() and the §3.5 split reproduces each
// bucket — to well within the 1e-9 acceptance tolerance.
TEST(CostLedger, XbarLedgerTotalMatchesHardwareEstimate) {
  Profiler profiler;
  Profiler::set_active(&profiler);
  CostLedger ledger;
  CostLedger::set_active(&ledger);
  core::XbarPdipOptions options;
  options.seed = 7;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  const auto outcome = core::solve_xbar_pdip(textbook_problem(), options);
  CostLedger::set_active(nullptr);
  Profiler::set_active(nullptr);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);

  const perf::HardwareModel model;
  const auto relative_diff = [](double a, double b) {
    return std::abs(a - b) / std::max(std::abs(b), 1e-300);
  };
  const perf::CostEstimate iterative = model.estimate(outcome.stats);
  const perf::CostEstimate programming =
      model.estimate_programming(outcome.stats);

  const perf::CostEstimate total = model.price_counters(ledger.total());
  EXPECT_LT(relative_diff(total.energy_j,
                          iterative.energy_j + programming.energy_j),
            1e-9);
  EXPECT_LT(relative_diff(total.latency_s,
                          iterative.latency_s + programming.latency_s),
            1e-9);

  const perf::CostSplit split =
      perf::split_programming(ledger.tree(), model);
  EXPECT_LT(relative_diff(split.iterative_cost.energy_j, iterative.energy_j),
            1e-9);
  EXPECT_LT(
      relative_diff(split.programming_cost.energy_j, programming.energy_j),
      1e-9);

  // The attribution is hierarchical: the solve's phases appear as distinct
  // paths, and digital flops were charged alongside the analog events.
  const auto tree = ledger.tree();
  EXPECT_TRUE(tree.contains("xbar/programming"));
  EXPECT_TRUE(tree.contains("xbar/iterations"));
  std::uint64_t flops = 0;
  for (const auto& [path, counters] : tree) flops += counters.flops;
  EXPECT_GT(flops, 0u);
}

}  // namespace
}  // namespace memlp::obs
