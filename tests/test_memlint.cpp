// memlint's own test suite: runs the binary against the fixture trees in
// tests/data/memlint/ (one deliberate violation per rule, a suppression
// case, a near-miss "clean" case, and a tools/-scope case) and asserts the
// exact rule ids, diagnostic locations, and exit codes.
//
// MEMLINT_BIN and MEMLINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved.
};

RunResult run_memlint(const std::string& args) {
  const std::string command =
      std::string(MEMLINT_BIN) + " --root \"" MEMLINT_FIXTURES "\" " + args +
      " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    result.output.append(buffer.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Memlint, R1FlagsRawThreadSpawn) {
  const RunResult run = run_memlint("src/r1_thread.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r1_thread.cpp:5: [R1/parallelism-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R2FlagsAdHocRngTwicePerLinePlusRandCall) {
  const RunResult run = run_memlint("src/r2_rng.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_occurrences(run.output, "src/r2_rng.cpp:6: [R2/rng-discipline]"),
            2)
      << run.output;
  EXPECT_NE(run.output.find("src/r2_rng.cpp:7: [R2/rng-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R3FlagsConsoleOutputInLibraryCode) {
  const RunResult run = run_memlint("src/r3_io.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r3_io.cpp:6: [R3/io-discipline]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/r3_io.cpp:7: [R3/io-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R4FlagsBareAssertAndRuntimeError) {
  const RunResult run = run_memlint("src/r4_assert.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r4_assert.cpp:6: [R4/error-discipline]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/r4_assert.cpp:8: [R4/error-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R5FlagsSuffixlessQuantityOnly) {
  const RunResult run = run_memlint("src/r5_units.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r5_units.cpp:3: [R5/unit-suffix]"),
            std::string::npos)
      << run.output;
  // "wall" is a quantity word too (cost-ledger fields).
  EXPECT_NE(run.output.find("src/r5_units.cpp:6: [R5/unit-suffix]"),
            std::string::npos)
      << run.output;
  // latency_s (line 4) and wall_seconds (line 7) are properly suffixed.
  EXPECT_EQ(count_occurrences(run.output, "[R5/unit-suffix]"), 2)
      << run.output;
}

TEST(Memlint, R6FlagsHeaderWithoutPragmaOnce) {
  const RunResult run = run_memlint("src/r6_missing_pragma.hpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r6_missing_pragma.hpp:0: [R6/header-hygiene]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R7FlagsEngineInternalIncludesOutsideCore) {
  const RunResult run = run_memlint("src/r7_engine_include.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(
      run.output.find("src/r7_engine_include.cpp:3: [R7/engine-encapsulation]"),
      std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("src/r7_engine_include.cpp:4: [R7/engine-encapsulation]"),
      std::string::npos)
      << run.output;
  // The doc-comment mention on line 2 must not count.
  EXPECT_EQ(count_occurrences(run.output, "[R7/engine-encapsulation]"), 2)
      << run.output;
}

TEST(Memlint, R7AllowsEngineInternalIncludesInsideCore) {
  const RunResult run = run_memlint("src/core/engine_internal_ok.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, SuppressionsByIdAndNameSilenceFindings) {
  const RunResult run = run_memlint("src/suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, CommentsStringsTemplateArgsAndCastsAreClean) {
  const RunResult run = run_memlint("src/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, ToolsAreExemptFromLibraryOnlyRules) {
  const RunResult run = run_memlint("tools/exempt_tool.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, FullFixtureTreeReportsEveryRuleOnce) {
  const RunResult run = run_memlint("");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (const char* tag :
       {"[R1/parallelism-discipline]", "[R2/rng-discipline]",
        "[R3/io-discipline]", "[R4/error-discipline]", "[R5/unit-suffix]",
        "[R6/header-hygiene]", "[R7/engine-encapsulation]"})
    EXPECT_NE(run.output.find(tag), std::string::npos)
        << tag << '\n'
        << run.output;
  EXPECT_NE(run.output.find("memlint: 13 violation(s)"), std::string::npos)
      << run.output;
}

TEST(Memlint, ListRulesDocumentsTheCatalogue) {
  const RunResult run = run_memlint("--list-rules");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  for (const char* slug :
       {"R1/parallelism-discipline", "R2/rng-discipline", "R3/io-discipline",
        "R4/error-discipline", "R5/unit-suffix", "R6/header-hygiene",
        "R7/engine-encapsulation"})
    EXPECT_NE(run.output.find(slug), std::string::npos) << run.output;
}

TEST(Memlint, UnknownOptionIsAUsageError) {
  const RunResult run = run_memlint("--no-such-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
