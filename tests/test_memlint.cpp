// memlint's own test suite, in two halves:
//
//   * CLI tests run the binary against the fixture trees in
//     tests/data/memlint/ (one deliberate violation per rule, suppression
//     cases at line and file scope, near-miss "clean" cases, and a
//     tools/-scope case) and assert the exact rule ids, diagnostic
//     locations, and exit codes.
//   * Library tests link tools/memlint/ directly and exercise the
//     stripper, the scope-aware parser, and the call graph on inline
//     sources — no subprocess, no fixture files.
//
// MEMLINT_BIN and MEMLINT_FIXTURES are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "memlint/callgraph.hpp"
#include "memlint/parse.hpp"
#include "memlint/stripper.hpp"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved.
};

RunResult run_memlint(const std::string& args) {
  const std::string command =
      std::string(MEMLINT_BIN) + " --root \"" MEMLINT_FIXTURES "\" " + args +
      " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0)
    result.output.append(buffer.data(), n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Memlint, R1FlagsRawThreadSpawn) {
  const RunResult run = run_memlint("src/r1_thread.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r1_thread.cpp:5: [R1/parallelism-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R2FlagsAdHocRngTwicePerLinePlusRandCall) {
  const RunResult run = run_memlint("src/r2_rng.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_occurrences(run.output, "src/r2_rng.cpp:6: [R2/rng-discipline]"),
            2)
      << run.output;
  EXPECT_NE(run.output.find("src/r2_rng.cpp:7: [R2/rng-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R3FlagsConsoleOutputInLibraryCode) {
  const RunResult run = run_memlint("src/r3_io.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r3_io.cpp:6: [R3/io-discipline]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/r3_io.cpp:7: [R3/io-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R3ExemptsObsSinkLayer) {
  // src/obs/ is the sink layer: the same fopen/fputs calls that r3_io.cpp
  // trips on are how the flight recorder and Prometheus exposition write.
  const RunResult run = run_memlint("src/obs/exposition_sink_ok.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_occurrences(run.output, "[R3/io-discipline]"), 0)
      << run.output;
}

TEST(Memlint, R4FlagsBareAssertAndRuntimeError) {
  const RunResult run = run_memlint("src/r4_assert.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r4_assert.cpp:6: [R4/error-discipline]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/r4_assert.cpp:8: [R4/error-discipline]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R5FlagsSuffixlessQuantityOnly) {
  const RunResult run = run_memlint("src/r5_units.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r5_units.cpp:3: [R5/unit-suffix]"),
            std::string::npos)
      << run.output;
  // "wall" is a quantity word too (cost-ledger fields).
  EXPECT_NE(run.output.find("src/r5_units.cpp:6: [R5/unit-suffix]"),
            std::string::npos)
      << run.output;
  // latency_s (line 4) and wall_seconds (line 7) are properly suffixed.
  EXPECT_EQ(count_occurrences(run.output, "[R5/unit-suffix]"), 2)
      << run.output;
}

TEST(Memlint, R6FlagsHeaderWithoutPragmaOnce) {
  const RunResult run = run_memlint("src/r6_missing_pragma.hpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/r6_missing_pragma.hpp:0: [R6/header-hygiene]"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R7FlagsEngineInternalIncludesOutsideCore) {
  const RunResult run = run_memlint("src/r7_engine_include.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(
      run.output.find("src/r7_engine_include.cpp:3: [R7/engine-encapsulation]"),
      std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("src/r7_engine_include.cpp:4: [R7/engine-encapsulation]"),
      std::string::npos)
      << run.output;
  // The doc-comment mention on line 2 must not count.
  EXPECT_EQ(count_occurrences(run.output, "[R7/engine-encapsulation]"), 2)
      << run.output;
}

TEST(Memlint, R7AllowsEngineInternalIncludesInsideCore) {
  const RunResult run = run_memlint("src/core/engine_internal_ok.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, R8FlagsRefCaptureMutationsInParLambdas) {
  const RunResult run = run_memlint("src/r8_par_mutation.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Direct lambda argument: scalar += and bare ++ on by-ref captures.
  EXPECT_NE(run.output.find(
                "src/r8_par_mutation.cpp:7: [R8/par-capture-determinism]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("capture 'sum' (+=)"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "src/r8_par_mutation.cpp:8: [R8/par-capture-determinism]"),
            std::string::npos)
      << run.output;
  // Lambda bound to a name, then handed to parallel_for_ranges.
  EXPECT_NE(run.output.find(
                "src/r8_par_mutation.cpp:10: [R8/par-capture-determinism]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("par::parallel_for_ranges"), std::string::npos)
      << run.output;
  EXPECT_EQ(count_occurrences(run.output, "[R8/par-capture-determinism]"), 3)
      << run.output;
}

TEST(Memlint, R8AllowsPerIndexSlotWritesAndLocals) {
  const RunResult run = run_memlint("src/r8_indexed_ok.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, R9FlagsDirectAllocationInHotFunction) {
  const RunResult run = run_memlint("src/r9_hot_alloc.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(
      run.output.find("src/r9_hot_alloc.cpp:5: [R9/hot-path-allocation]"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("allocation (new) in hot-annotated "
                            "'fixture_settle'"),
            std::string::npos)
      << run.output;
}

TEST(Memlint, R9FlagsTransitiveAllocationAcrossFiles) {
  const RunResult run =
      run_memlint("src/r9_hot_alloc.cpp src/r9_helper.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The helper's container growth is reached through the cross-file call
  // graph; the diagnostic lands on the allocation site and names the root.
  EXPECT_NE(run.output.find("src/r9_helper.cpp:5: [R9/hot-path-allocation]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("in 'fixture_stage_sum', reachable from "
                            "hot-annotated 'fixture_settle'"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(count_occurrences(run.output, "[R9/hot-path-allocation]"), 2)
      << run.output;
}

TEST(Memlint, R9IgnoresAllocationsOutsideTheHotClosure) {
  const RunResult run = run_memlint("src/r9_hot_clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, R10FlagsUnchargedNestedLoopsInLinalg) {
  const RunResult run = run_memlint("src/linalg/r10_loops.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Diagnostic anchors on the function header line. Braceless nested
  // for-loops still count as depth 2.
  EXPECT_NE(
      run.output.find("src/linalg/r10_loops.cpp:3: [R10/ledger-coverage]"),
      std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("'fixture_frob' has nested loops"),
            std::string::npos)
      << run.output;
  // fixture_trace carries memlint:allow(R10) on its header line.
  EXPECT_EQ(count_occurrences(run.output, "[R10/ledger-coverage]"), 1)
      << run.output;
}

TEST(Memlint, R10AcceptsChargeThroughACallee) {
  const RunResult run = run_memlint("src/linalg/r10_charged.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, DigitSeparatorDoesNotHideRestOfLine) {
  const RunResult run = run_memlint("src/digit_sep.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // `fixture_work(10'000);` precedes the violation on the same line; a
  // stripper that treats the separator as a char literal blanks it.
  EXPECT_NE(run.output.find("src/digit_sep.cpp:5: [R5/unit-suffix]"),
            std::string::npos)
      << run.output;
  // The raw string mentioning std::thread on line 6 must stay silent.
  EXPECT_EQ(count_occurrences(run.output, "[R1/parallelism-discipline]"), 0)
      << run.output;
  EXPECT_NE(run.output.find("memlint: 1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(Memlint, AllowFileSuppressesByIdAndSlugAcrossTheFile) {
  const RunResult run = run_memlint("src/allow_file.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, AllowFileIsScopedToTheNamedRules) {
  const RunResult run = run_memlint("src/allow_file_mixed.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // allow-file(R3) silences the console write but not the thread spawn.
  EXPECT_EQ(count_occurrences(run.output, "[R3/io-discipline]"), 0)
      << run.output;
  EXPECT_NE(run.output.find(
                "src/allow_file_mixed.cpp:5: [R1/parallelism-discipline]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("memlint: 1 violation(s)"), std::string::npos)
      << run.output;
}

TEST(Memlint, JsonOutputCarriesSchemaRuleAndLocation) {
  const RunResult run = run_memlint("--json src/digit_sep.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("\"schema\": \"memlp.memlint/1\""),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"file\": \"src/digit_sep.cpp\", \"line\": 5, "
                            "\"rule\": \"R5\", \"slug\": \"unit-suffix\""),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"count\": 1"), std::string::npos) << run.output;
}

TEST(Memlint, SummaryCountsHitsAndSuppressionsPerRule) {
  const RunResult run = run_memlint("--summary src/linalg/r10_loops.cpp");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("memlint summary:"), std::string::npos)
      << run.output;
  // One header fires, one carries an allow on its header line.
  EXPECT_NE(run.output.find("R10/ledger-coverage"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("1 hit(s), 1 suppressed"), std::string::npos)
      << run.output;
}

TEST(Memlint, SuppressionsByIdAndNameSilenceFindings) {
  const RunResult run = run_memlint("src/suppressed.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, CommentsStringsTemplateArgsAndCastsAreClean) {
  const RunResult run = run_memlint("src/clean.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, ToolsAreExemptFromLibraryOnlyRules) {
  const RunResult run = run_memlint("tools/exempt_tool.cpp");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

TEST(Memlint, FullFixtureTreeReportsEveryRuleOnce) {
  const RunResult run = run_memlint("");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  for (const char* tag :
       {"[R1/parallelism-discipline]", "[R2/rng-discipline]",
        "[R3/io-discipline]", "[R4/error-discipline]", "[R5/unit-suffix]",
        "[R6/header-hygiene]", "[R7/engine-encapsulation]",
        "[R8/par-capture-determinism]", "[R9/hot-path-allocation]",
        "[R10/ledger-coverage]"})
    EXPECT_NE(run.output.find(tag), std::string::npos)
        << tag << '\n'
        << run.output;
  EXPECT_NE(run.output.find("memlint: 21 violation(s)"), std::string::npos)
      << run.output;
}

TEST(Memlint, ListRulesDocumentsTheCatalogue) {
  const RunResult run = run_memlint("--list-rules");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  for (const char* slug :
       {"R1/parallelism-discipline", "R2/rng-discipline", "R3/io-discipline",
        "R4/error-discipline", "R5/unit-suffix", "R6/header-hygiene",
        "R7/engine-encapsulation", "R8/par-capture-determinism",
        "R9/hot-path-allocation", "R10/ledger-coverage"})
    EXPECT_NE(run.output.find(slug), std::string::npos) << run.output;
}

TEST(Memlint, UnknownOptionIsAUsageError) {
  const RunResult run = run_memlint("--no-such-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

// ---------------------------------------------------------------------------
// Library-level tests: tools/memlint/ linked directly.

std::vector<std::string> strip_all(const std::vector<std::string>& raw) {
  memlint::Stripper stripper;
  std::vector<std::string> code;
  code.reserve(raw.size());
  for (const std::string& line : raw) code.push_back(stripper.strip(line));
  return code;
}

memlint::FileModel parse_snippet(const std::string& rel,
                                 const std::vector<std::string>& raw) {
  return memlint::parse_file(rel, strip_all(raw), raw);
}

TEST(MemlintStripper, DigitSeparatorDoesNotOpenACharLiteral) {
  memlint::Stripper stripper;
  const std::string out =
      stripper.strip("run(10'000); double energy = 1.0;");
  EXPECT_NE(out.find("double energy"), std::string::npos) << out;
  EXPECT_FALSE(stripper.mid_multiline());
}

TEST(MemlintStripper, CharLiteralsAreStillBlanked) {
  memlint::Stripper stripper;
  const std::string out = stripper.strip("char c = 'x'; keep();");
  EXPECT_EQ(out.find('x'), std::string::npos) << out;
  EXPECT_NE(out.find("keep"), std::string::npos) << out;
}

TEST(MemlintStripper, RawStringBodyIsBlankedQuotesAndAll) {
  memlint::Stripper stripper;
  const std::string out = stripper.strip(
      "const char* q = R\"(say \"std::thread\" loudly)\"; keep();");
  EXPECT_EQ(out.find("std::thread"), std::string::npos) << out;
  EXPECT_NE(out.find("keep"), std::string::npos) << out;
  EXPECT_FALSE(stripper.mid_multiline());
}

TEST(MemlintStripper, MultilineRawStringTracksItsDelimiter) {
  memlint::Stripper stripper;
  stripper.strip("auto q = R\"x(first");
  EXPECT_TRUE(stripper.mid_multiline());
  // A plain `)"` inside the body must NOT close a `)x"` raw string.
  const std::string mid = stripper.strip("std::mutex m; )\" not yet");
  EXPECT_EQ(mid.find("mutex"), std::string::npos) << mid;
  EXPECT_TRUE(stripper.mid_multiline());
  const std::string out = stripper.strip("last)x\" + tail;");
  EXPECT_NE(out.find("tail"), std::string::npos) << out;
  EXPECT_FALSE(stripper.mid_multiline());
}

TEST(MemlintParse, ExtractsFunctionsLoopsAndCaptures) {
  const std::vector<std::string> raw = {
      "namespace memlp {",
      "// memlint:hot — snippet kernel.",
      "double kernel(int n) {",
      "  double acc = 0.0;",
      "  for (int i = 0; i < n; ++i)",
      "    for (int j = 0; j < n; ++j) acc += i * j;",
      "  auto body = [&acc, n](int i) { acc += i; };",
      "  par::parallel_for(n, body);",
      "  return acc;",
      "}",
      "}",
  };
  const memlint::FileModel model = parse_snippet("src/x.cpp", raw);
  ASSERT_EQ(model.functions.size(), 1u);
  const memlint::FunctionInfo& fn = model.functions[0];
  EXPECT_EQ(fn.name, "kernel");
  EXPECT_EQ(fn.header_line, 3u);
  EXPECT_EQ(fn.body_end, 10u);
  EXPECT_TRUE(fn.hot);
  // The nested for-loops are braceless; depth must still reach 2.
  EXPECT_EQ(fn.max_loop_depth, 2u);

  ASSERT_EQ(model.lambdas.size(), 1u);
  const memlint::LambdaInfo& lambda = model.lambdas[0];
  EXPECT_EQ(lambda.intro_line, 7u);
  EXPECT_EQ(lambda.bound_to, "body");
  EXPECT_FALSE(lambda.default_ref);
  ASSERT_EQ(lambda.ref_captures.size(), 1u);
  EXPECT_EQ(lambda.ref_captures[0], "acc");
  ASSERT_EQ(lambda.copy_captures.size(), 1u);
  EXPECT_EQ(lambda.copy_captures[0], "n");
  ASSERT_EQ(lambda.params.size(), 1u);
  EXPECT_EQ(lambda.params[0], "i");
  EXPECT_EQ(lambda.enclosing_function, 0);

  // The par call records its argument identifiers so bound lambdas can be
  // matched back to the entry point.
  bool saw_par_call = false;
  for (const memlint::CallSite& call : fn.calls)
    if (call.name == "parallel_for") {
      saw_par_call = true;
      EXPECT_NE(std::find(call.arg_idents.begin(), call.arg_idents.end(),
                          "body"),
                call.arg_idents.end());
    }
  EXPECT_TRUE(saw_par_call);
}

TEST(MemlintParse, RefMutationsFlagScalarsButNotIndexedSlots) {
  const std::vector<std::string> raw = {
      "namespace memlp {",
      "void f(int n, double* out) {",
      "  double sum = 0.0;",
      "  par::parallel_for(n, [&](int i) {",
      "    double local = 0.0;",
      "    local += i;",
      "    out[i] = local;",
      "    sum += local;",
      "  });",
      "}",
      "}",
  };
  const std::vector<std::string> code = strip_all(raw);
  const memlint::FileModel model = memlint::parse_file("src/x.cpp", code, raw);
  ASSERT_EQ(model.lambdas.size(), 1u);
  const auto sites = memlint::lambda_ref_mutations(model.lambdas[0], code);
  // `local` is body-local and `out[i]` is a per-index slot; only the
  // scalar accumulation into the captured `sum` counts.
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].line, 8u);
  EXPECT_EQ(sites[0].target, "sum");
  EXPECT_EQ(sites[0].how, "+=");
}

TEST(MemlintCallGraph, ClosureCrossesFilesByFreeCalls) {
  const memlint::FileModel a = parse_snippet(
      "src/a.cpp", {"double top(int n) { return mid(n); }"});
  const memlint::FileModel b = parse_snippet(
      "src/b.cpp", {"double mid(int n) { return leaf(n); }",
                    "double leaf(int n) { return n * 2.0; }"});
  const std::vector<memlint::FileModel> models = {a, b};
  memlint::CallGraph graph;
  graph.build(models);

  const std::vector<memlint::FunctionRef> roots = graph.resolve("top", "");
  ASSERT_EQ(roots.size(), 1u);
  const std::vector<memlint::Reached> closure = graph.closure(roots[0]);
  ASSERT_EQ(closure.size(), 3u);
  EXPECT_EQ(graph.fn(closure[0].ref).name, "top");
  EXPECT_EQ(graph.fn(closure[1].ref).name, "mid");
  EXPECT_EQ(graph.file_of(closure[1].ref), "src/b.cpp");
  EXPECT_EQ(graph.fn(closure[2].ref).name, "leaf");
}

}  // namespace
