// Tests for the write-path level model, including its calibration against
// the physical device model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "memristor/device.hpp"
#include "memristor/programming.hpp"

namespace memlp::mem {
namespace {

TEST(Programming, NeedsAtLeastTwoLevels) {
  EXPECT_THROW(ProgrammingModel(DeviceParameters{}, 1), ConfigError);
  EXPECT_NO_THROW(ProgrammingModel(DeviceParameters{}, 2));
}

TEST(Programming, EndpointsMapToWindowBounds) {
  const DeviceParameters device;
  const ProgrammingModel model(device, 256);
  EXPECT_DOUBLE_EQ(model.conductance_of(0), device.g_min());
  EXPECT_DOUBLE_EQ(model.conductance_of(255), device.g_max());
  EXPECT_EQ(model.level_for(device.g_min()), 0u);
  EXPECT_EQ(model.level_for(device.g_max()), 255u);
}

TEST(Programming, QuantizeIsIdempotent) {
  const ProgrammingModel model(DeviceParameters{}, 64);
  for (double g = model.g_min(); g <= model.g_max(); g += model.g_max() / 37)
    EXPECT_DOUBLE_EQ(model.quantize(model.quantize(g)), model.quantize(g));
}

TEST(Programming, QuantizationErrorBoundedByHalfStep) {
  const DeviceParameters device;
  const ProgrammingModel model(device, 256);
  const double step = (device.g_max() - device.g_min()) / 255.0;
  for (double g = device.g_min(); g <= device.g_max(); g += step / 3.0)
    EXPECT_LE(std::abs(model.quantize(g) - g), step / 2.0 + 1e-15);
}

TEST(Programming, OutOfWindowValuesClamp) {
  const DeviceParameters device;
  const ProgrammingModel model(device, 16);
  EXPECT_DOUBLE_EQ(model.quantize(device.g_min() / 10.0), device.g_min());
  EXPECT_DOUBLE_EQ(model.quantize(device.g_max() * 10.0), device.g_max());
}

TEST(Programming, PulsesAreLevelDistance) {
  const DeviceParameters device;
  const ProgrammingModel model(device, 256);
  EXPECT_EQ(model.pulses_for(model.conductance_of(10),
                             model.conductance_of(10)),
            0u);
  EXPECT_EQ(model.pulses_for(model.conductance_of(10),
                             model.conductance_of(14)),
            4u);
  // Symmetric.
  EXPECT_EQ(model.pulses_for(model.conductance_of(14),
                             model.conductance_of(10)),
            4u);
}

TEST(Programming, MoreLevelsMeansFinerSteps) {
  const DeviceParameters device;
  const ProgrammingModel coarse(device, 16);
  const ProgrammingModel fine(device, 1024);
  const double g = 0.37 * device.g_max();
  EXPECT_LE(std::abs(fine.quantize(g) - g), std::abs(coarse.quantize(g) - g));
}

// Calibration: driving the physical device to each level's conductance
// works, i.e. the level abstraction is realizable by pulse trains.
TEST(Programming, LevelsAreRealizableOnDevice) {
  const DeviceParameters params;
  const ProgrammingModel model(params, 16);
  for (std::size_t level = 0; level < 16; level += 3) {
    Device device(params, 0.0);
    const double target = model.conductance_of(level);
    device.program_to_conductance(target, 0.02, 100'000);
    EXPECT_NEAR(device.conductance(), target, 0.021 * target)
        << "level " << level;
  }
}

}  // namespace
}  // namespace memlp::mem
