// Tests for the summing-amplifier bank.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "crossbar/amplifier.hpp"

namespace memlp::xbar {
namespace {

TEST(Amplifier, AddSubScale) {
  AmplifierBank amps;
  EXPECT_EQ(amps.add(Vec{1, 2}, Vec{3, 4}), (Vec{4, 6}));
  EXPECT_EQ(amps.sub(Vec{3, 4}, Vec{1, 2}), (Vec{2, 2}));
  EXPECT_EQ(amps.scale(Vec{1, -2}, 3.0), (Vec{3, -6}));
}

TEST(Amplifier, AddScaledFusesOnePass) {
  AmplifierBank amps;
  EXPECT_EQ(amps.add_scaled(Vec{1, 1}, 0.5, Vec{2, 4}), (Vec{2, 3}));
  EXPECT_EQ(amps.stats().vector_ops, 1u);
}

TEST(Amplifier, HalveIsEq15bCorrection) {
  AmplifierBank amps;
  EXPECT_EQ(amps.halve(Vec{2, 4, -6}), (Vec{1, 2, -3}));
}

TEST(Amplifier, CountsOperations) {
  AmplifierBank amps;
  (void)amps.add(Vec{1, 2, 3}, Vec{1, 2, 3});
  (void)amps.sub(Vec{1, 2, 3}, Vec{1, 2, 3});
  (void)amps.halve(Vec{1, 2, 3});
  EXPECT_EQ(amps.stats().vector_ops, 3u);
  EXPECT_EQ(amps.stats().element_ops, 9u);
  amps.reset_stats();
  EXPECT_EQ(amps.stats().vector_ops, 0u);
  EXPECT_EQ(amps.stats().element_ops, 0u);
}

TEST(Amplifier, SizeMismatchThrows) {
  AmplifierBank amps;
  EXPECT_THROW((void)amps.add(Vec{1}, Vec{1, 2}), ContractViolation);
  EXPECT_THROW((void)amps.sub(Vec{1, 2, 3}, Vec{1, 2}), ContractViolation);
}

TEST(AmplifierStats, AccumulateAndDiff) {
  AmplifierStats a{10, 2};
  const AmplifierStats b{5, 1};
  a += b;
  EXPECT_EQ(a.element_ops, 15u);
  EXPECT_EQ(a.vector_ops, 3u);
  const AmplifierStats d = a.since(b);
  EXPECT_EQ(d.element_ops, 10u);
  EXPECT_EQ(d.vector_ops, 2u);
}

}  // namespace
}  // namespace memlp::xbar
