// Tests for the memlp::par threading layer and its determinism contract:
// bit-identical results and identical aggregate stats at every thread count,
// and trace/metrics infrastructure that survives concurrent solves.
//
// TSan note: every EXPECT/ASSERT here runs on the main test thread, after
// the parallel region has completed — worker threads only touch their own
// task state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/par.hpp"
#include "common/rng.hpp"
#include "core/batch.hpp"
#include "core/xbar_pdip.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "lp/generator.hpp"
#include "noc/tiled.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace memlp {
namespace {

// default_threads() resolves MEMLP_THREADS exactly once per process; pin it
// to 4 before anything in the library can resolve it, so the `threads = 0`
// paths in this binary genuinely run multi-threaded.
const bool kThreadsEnvPinned = [] {
  ::setenv("MEMLP_THREADS", "4", 1);
  return true;
}();

// --- the pool itself --------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ASSERT_TRUE(kThreadsEnvPinned);
  EXPECT_EQ(par::default_threads(), 4u);
  constexpr std::size_t kCount = 10000;
  std::vector<int> visits(kCount, 0);  // index i written only by its task
  par::parallel_for(kCount, [&](std::size_t i) { visits[i] += 1; }, 4);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i], 1);
}

TEST(ParallelForRanges, DisjointRangesRespectingGrain) {
  constexpr std::size_t kCount = 1003;
  constexpr std::size_t kGrain = 64;
  std::vector<int> visits(kCount, 0);
  std::atomic<bool> grain_ok{true};
  par::parallel_for_ranges(
      kCount, kGrain,
      [&](std::size_t begin, std::size_t end) {
        if (end - begin > kGrain || begin >= end) grain_ok = false;
        for (std::size_t i = begin; i < end; ++i) visits[i] += 1;
      },
      4);
  EXPECT_TRUE(grain_ok.load());
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(visits[i], 1);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool called = false;
  par::parallel_for(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      par::parallel_for(
          256,
          [](std::size_t i) {
            if (i == 97) throw std::runtime_error("task failure");
          },
          4),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::vector<int> visits(64, 0);
  par::parallel_for(64, [&](std::size_t i) { visits[i] += 1; }, 4);
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<int> inner_visits(kOuter * kInner, 0);
  std::vector<unsigned char> saw_region_flag(kOuter, 0);
  par::parallel_for(
      kOuter,
      [&](std::size_t outer) {
        saw_region_flag[outer] = par::in_parallel_region() ? 1 : 0;
        // Nested call: must execute inline on this thread, not deadlock.
        par::parallel_for(
            kInner,
            [&](std::size_t inner) {
              inner_visits[outer * kInner + inner] += 1;
            },
            4);
      },
      4);
  for (std::size_t k = 0; k < kOuter; ++k) EXPECT_EQ(saw_region_flag[k], 1);
  for (int v : inner_visits) EXPECT_EQ(v, 1);
  EXPECT_FALSE(par::in_parallel_region());
}

// --- tiled crossbar: bit-identical results, identical stats -----------------

noc::TiledConfig noisy_tiled(std::size_t threads) {
  noc::TiledConfig config;
  config.tile_dim = 5;  // 13x9 -> 3x2 grid of uneven tiles
  config.xbar.variation = mem::VariationModel::uniform(0.08);
  config.xbar.io_bits = 8;
  config.threads = threads;
  return config;
}

Matrix random_nonneg(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(0.0, 2.0);
  return m;
}

void expect_stats_equal(const noc::TiledCrossbarMatrix& a,
                        const noc::TiledCrossbarMatrix& b) {
  EXPECT_EQ(a.noc_stats().transfers, b.noc_stats().transfers);
  EXPECT_EQ(a.noc_stats().value_hops, b.noc_stats().value_hops);
  EXPECT_EQ(a.noc_stats().global_settles, b.noc_stats().global_settles);
  EXPECT_EQ(a.noc_stats().tile_settles, b.noc_stats().tile_settles);
  const xbar::CrossbarStats xa = a.crossbar_stats();
  const xbar::CrossbarStats xb = b.crossbar_stats();
  EXPECT_EQ(xa.full_programs, xb.full_programs);
  EXPECT_EQ(xa.cells_written, xb.cells_written);
  EXPECT_EQ(xa.write_pulses, xb.write_pulses);
  EXPECT_EQ(xa.mvm_ops, xb.mvm_ops);
  EXPECT_EQ(xa.solve_ops, xb.solve_ops);
  EXPECT_EQ(xa.pulse_histogram, xb.pulse_histogram);
  EXPECT_EQ(a.amplifier_stats().element_ops, b.amplifier_stats().element_ops);
  EXPECT_EQ(a.amplifier_stats().vector_ops, b.amplifier_stats().vector_ops);
}

TEST(TiledPar, ProgramAndMultiplyBitIdenticalAcrossThreadCounts) {
  Rng data_rng(11);
  const Matrix a = random_nonneg(13, 9, data_rng);
  noc::TiledCrossbarMatrix serial(noisy_tiled(1), Rng(99));
  noc::TiledCrossbarMatrix parallel(noisy_tiled(4), Rng(99));
  serial.program(a);
  parallel.program(a);

  // Same variation draws in every tile => identical effective arrays.
  const Matrix effective_serial = serial.assemble_effective();
  const Matrix effective_parallel = parallel.assemble_effective();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(effective_serial(i, j), effective_parallel(i, j));

  Vec x(9);
  for (double& v : x) v = data_rng.uniform(-1.0, 1.0);
  const Vec y1 = serial.multiply(x);
  const Vec y4 = parallel.multiply(x);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y4[i]);

  Vec xt(13);
  for (double& v : xt) v = data_rng.uniform(-1.0, 1.0);
  const Vec z1 = serial.multiply_transposed(xt);
  const Vec z4 = parallel.multiply_transposed(xt);
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_EQ(z1[i], z4[i]);

  // update_block spanning several tiles, then another readout.
  Rng update_rng(12);
  const Matrix patch = random_nonneg(6, 7, update_rng);
  serial.update_block(3, 1, patch);
  parallel.update_block(3, 1, patch);
  const Vec u1 = serial.multiply(x);
  const Vec u4 = parallel.multiply(x);
  for (std::size_t i = 0; i < u1.size(); ++i) EXPECT_EQ(u1[i], u4[i]);

  expect_stats_equal(serial, parallel);
}

TEST(TiledPar, BlockJacobiBitIdenticalAcrossThreadCounts) {
  // Diagonally dominant system so the sweep converges.
  constexpr std::size_t kDim = 12;
  Rng data_rng(21);
  Matrix a = random_nonneg(kDim, kDim, data_rng);
  for (std::size_t i = 0; i < kDim; ++i) a(i, i) += 4.0 * kDim;
  Vec b(kDim);
  for (double& v : b) v = data_rng.uniform(-1.0, 1.0);

  noc::TiledConfig config1 = noisy_tiled(1);
  noc::TiledConfig config4 = noisy_tiled(4);
  config1.tile_dim = config4.tile_dim = 4;  // 3x3 grid, square diagonals
  // Keep process variation but lift the 8-bit I/O boundary: the sweep's
  // per-tile settles run through the DAC/ADC, and quantized iterates stall
  // above the default tolerance (this test is about thread invariance).
  config1.xbar.io_bits = config4.xbar.io_bits = 0;
  noc::TiledCrossbarMatrix serial(config1, Rng(77));
  noc::TiledCrossbarMatrix parallel(config4, Rng(77));
  serial.program(a);
  parallel.program(a);

  const auto r1 = serial.solve_block_jacobi(b);
  const auto r4 = parallel.solve_block_jacobi(b);
  EXPECT_TRUE(r1.converged);
  EXPECT_EQ(r1.converged, r4.converged);
  EXPECT_EQ(r1.sweeps, r4.sweeps);
  EXPECT_EQ(r1.residual_inf, r4.residual_inf);
  ASSERT_EQ(r1.x.size(), r4.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i) EXPECT_EQ(r1.x[i], r4.x[i]);
  expect_stats_equal(serial, parallel);
}

// --- batched solves ---------------------------------------------------------

std::vector<lp::LinearProgram> batch_problems(std::size_t count) {
  std::vector<lp::LinearProgram> problems;
  lp::GeneratorOptions gen;
  gen.constraints = 8;
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(1000 + i);
    problems.push_back(lp::random_feasible(gen, rng));
  }
  return problems;
}

core::XbarPdipOptions batch_base_options() {
  core::XbarPdipOptions base;
  base.hardware.crossbar.variation = mem::VariationModel::uniform(0.05);
  base.seed = 4242;
  return base;
}

TEST(BatchPar, MatchesSerialSolveLoopBitwise) {
  const auto problems = batch_problems(8);
  core::BatchOptions options;
  options.base = batch_base_options();
  options.threads = 4;

  const auto batched =
      solve_batch(std::span<const lp::LinearProgram>(problems), options);
  ASSERT_EQ(batched.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    core::XbarPdipOptions single = options.base;
    single.seed = options.base.seed + i;  // the batch's seed stride
    const auto serial = core::solve_xbar_pdip(problems[i], single);
    EXPECT_EQ(serial.result.status, batched[i].result.status);
    EXPECT_EQ(serial.result.iterations, batched[i].result.iterations);
    EXPECT_EQ(serial.result.objective, batched[i].result.objective);
    ASSERT_EQ(serial.result.x.size(), batched[i].result.x.size());
    for (std::size_t j = 0; j < serial.result.x.size(); ++j)
      EXPECT_EQ(serial.result.x[j], batched[i].result.x[j]);
    // Aggregate hardware counters must not depend on scheduling either.
    EXPECT_EQ(serial.stats.backend.xbar.cells_written,
              batched[i].stats.backend.xbar.cells_written);
    EXPECT_EQ(serial.stats.backend.xbar.write_pulses,
              batched[i].stats.backend.xbar.write_pulses);
    EXPECT_EQ(serial.stats.iterations, batched[i].stats.iterations);
    EXPECT_EQ(serial.stats.attempts, batched[i].stats.attempts);
  }
}

TEST(BatchPar, BitIdenticalAcrossThreadCounts) {
  const auto problems = batch_problems(8);
  core::BatchOptions serial_options;
  serial_options.base = batch_base_options();
  serial_options.threads = 1;
  core::BatchOptions parallel_options = serial_options;
  parallel_options.threads = 4;

  const auto r1 =
      solve_batch(std::span<const lp::LinearProgram>(problems), serial_options);
  const auto r4 = solve_batch(std::span<const lp::LinearProgram>(problems),
                              parallel_options);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].result.status, r4[i].result.status);
    EXPECT_EQ(r1[i].result.objective, r4[i].result.objective);
    for (std::size_t j = 0; j < r1[i].result.x.size(); ++j)
      EXPECT_EQ(r1[i].result.x[j], r4[i].result.x[j]);
    EXPECT_EQ(r1[i].stats.backend.xbar.cells_written,
              r4[i].stats.backend.xbar.cells_written);
    EXPECT_EQ(r1[i].stats.backend.noc.value_hops,
              r4[i].stats.backend.noc.value_hops);
  }
}

TEST(BatchPar, SharedJsonlSinkDeliversWholeLines) {
  const std::string path = testing::TempDir() + "/test_par_trace.jsonl";
  std::remove(path.c_str());
  {
    obs::JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    core::BatchOptions options;
    options.base = batch_base_options();
    options.base.pdip.trace = &sink;
    options.threads = 4;
    const auto problems = batch_problems(8);
    const auto outcomes =
        solve_batch(std::span<const lp::LinearProgram>(problems), options);
    ASSERT_EQ(outcomes.size(), problems.size());
    sink.flush();
  }
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::set<long long> seqs;
  std::size_t lines = 0;
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), file) != nullptr) {
    const std::string line(buffer);
    ++lines;
    // Whole, untorn JSONL records: one object per line, no interleaving.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    ASSERT_GE(line.size(), 3u);
    EXPECT_EQ(line[line.size() - 2], '}') << line;
    EXPECT_NE(line.find("\"type\":\""), std::string::npos) << line;
    const auto seq_pos = line.find("\"seq\":");
    ASSERT_NE(seq_pos, std::string::npos) << line;
    seqs.insert(std::atoll(line.c_str() + seq_pos + 6));
  }
  std::fclose(file);
  std::remove(path.c_str());
  ASSERT_GT(lines, 0u);
  // Unique, gap-free emission indices prove no lost or duplicated records.
  EXPECT_EQ(seqs.size(), lines);
  EXPECT_EQ(*seqs.begin(), 0);
  EXPECT_EQ(*seqs.rbegin(), static_cast<long long>(lines) - 1);
}

TEST(BatchPar, MetricsCountersExactUnderConcurrency) {
  auto& registry = obs::MetricsRegistry::global();
  const auto problems_before = registry.counter("batch.problems").value();
  const auto solves_before = registry.counter("xbar.solves").value();
  const auto problems = batch_problems(8);
  core::BatchOptions options;
  options.base = batch_base_options();
  options.threads = 4;
  const auto outcomes =
      solve_batch(std::span<const lp::LinearProgram>(problems), options);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(registry.counter("batch.problems").value() - problems_before, 8u);
  EXPECT_EQ(registry.counter("xbar.solves").value() - solves_before, 8u);
}

// --- parallel LU ------------------------------------------------------------

TEST(LuPar, ParallelEliminationIsRepeatableAndCorrect) {
  // Large enough that the elimination runs above the parallel cutoff.
  constexpr std::size_t kDim = 200;
  Rng rng(31);
  Matrix a(kDim, kDim);
  for (std::size_t i = 0; i < kDim; ++i)
    for (std::size_t j = 0; j < kDim; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < kDim; ++i) a(i, i) += 10.0;
  Vec b(kDim);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  const LuFactorization first(a);
  const LuFactorization second(a);
  ASSERT_FALSE(first.singular());
  const Vec x1 = first.solve(b);
  const Vec x2 = second.solve(b);
  for (std::size_t i = 0; i < kDim; ++i) EXPECT_EQ(x1[i], x2[i]);
  EXPECT_EQ(first.determinant(), second.determinant());

  const Vec residual = sub(gemv(a, x1), b);
  EXPECT_LT(norm_inf(residual), 1e-9);
}

}  // namespace
}  // namespace memlp
