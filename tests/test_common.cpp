// Tests for the common substrate: RNG, contracts, tables, env config.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include <fstream>
#include <iterator>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace memlp {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(17);
  const int trials = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.03);
}

TEST(Rng, SignedUnitWithinBounds) {
  Rng rng(19);
  double min_seen = 1.0, max_seen = -1.0;
  for (int i = 0; i < 50'000; ++i) {
    const double v = rng.signed_unit();
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_LT(min_seen, -0.95);
  EXPECT_GT(max_seen, 0.95);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent_a(99);
  Rng parent_b(99);
  Rng child_a = parent_a.split();
  Rng child_b = parent_b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a(), child_b());
  // Child and parent streams differ.
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Contracts, ExpectThrowsOnViolation) {
  EXPECT_THROW(MEMLP_EXPECT(1 == 2), ContractViolation);
  EXPECT_NO_THROW(MEMLP_EXPECT(1 == 1));
}

TEST(Contracts, MessageIncludesContext) {
  try {
    MEMLP_EXPECT_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 42"), std::string::npos);
    EXPECT_NE(what.find("Precondition"), std::string::npos);
  }
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table("demo");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  const std::string out = table.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(TextTable, RejectsWrongArityRow) {
  TextTable table("t");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, NumFormatsValues) {
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(TextTable::num(1.5, 3), "1.5");
}

TEST(Env, FallbacksWhenUnset) {
  ::unsetenv("MEMLP_TEST_UNSET");
  EXPECT_EQ(env_int("MEMLP_TEST_UNSET", 5), 5);
  EXPECT_DOUBLE_EQ(env_double("MEMLP_TEST_UNSET", 2.5), 2.5);
  EXPECT_TRUE(env_bool("MEMLP_TEST_UNSET", true));
}

TEST(Env, ParsesSetValues) {
  ::setenv("MEMLP_TEST_INT", "17", 1);
  ::setenv("MEMLP_TEST_DBL", "0.25", 1);
  ::setenv("MEMLP_TEST_BOOL", "yes", 1);
  EXPECT_EQ(env_int("MEMLP_TEST_INT", 0), 17);
  EXPECT_DOUBLE_EQ(env_double("MEMLP_TEST_DBL", 0.0), 0.25);
  EXPECT_TRUE(env_bool("MEMLP_TEST_BOOL", false));
  ::setenv("MEMLP_TEST_BOOL", "off", 1);
  EXPECT_FALSE(env_bool("MEMLP_TEST_BOOL", true));
}

TEST(Env, GarbageFallsBack) {
  ::setenv("MEMLP_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("MEMLP_TEST_INT", 9), 9);
}


TEST(Csv, EscapesPerRfc4180) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowAndTableRendering) {
  EXPECT_EQ(csv_row({"a", "b,c"}), "a,\"b,c\"\n");
  const std::string table =
      csv_table({"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(table, "x,y\n1,2\n3,4\n");
}

TEST(Csv, WriteCsvRoundTrip) {
  const std::string path = "/tmp/memlp_csv_test.csv";
  ASSERT_TRUE(write_csv(path, {"m", "err"}, {{"4", "0.5%"}}));
  std::ifstream file(path);
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "m,err\n4,0.5%\n");
}

TEST(Csv, WriteCsvFailsGracefully) {
  EXPECT_FALSE(write_csv("/nonexistent-dir/x.csv", {"a"}, {}));
}

TEST(TextTable, CsvExportViaEnv) {
  ::setenv("MEMLP_CSV_DIR", "/tmp", 1);
  TextTable table("CSV Export Smoke!");
  table.set_header({"k", "v"});
  table.add_row({"a", "1"});
  table.print();
  ::unsetenv("MEMLP_CSV_DIR");
  std::ifstream file("/tmp/csv-export-smoke.csv");
  ASSERT_TRUE(file.good());
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "k,v\na,1\n");
}

}  // namespace
}  // namespace memlp
