// Tests for the Eq. (18) process-variation model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "memristor/variation.hpp"

namespace memlp::mem {
namespace {

TEST(Variation, NoneIsIdentity) {
  Rng rng(1);
  const auto model = VariationModel::none();
  EXPECT_DOUBLE_EQ(model.perturb(3.5, rng), 3.5);
  Matrix m{{1, 2}, {3, 4}};
  const Matrix before = m;
  model.perturb(m, rng);
  EXPECT_EQ(m, before);
}

TEST(Variation, UniformStaysWithinBounds) {
  Rng rng(2);
  const auto model = VariationModel::uniform(0.2);
  for (int i = 0; i < 20'000; ++i) {
    const double v = model.perturb(10.0, rng);
    EXPECT_GE(v, 8.0);
    EXPECT_LE(v, 12.0);
  }
}

TEST(Variation, UniformIsCenteredOnNominal) {
  Rng rng(3);
  const auto model = VariationModel::uniform(0.1);
  double sum = 0.0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) sum += model.perturb(1.0, rng);
  EXPECT_NEAR(sum / trials, 1.0, 0.002);
}

TEST(Variation, MatrixPerturbationIsElementwiseBounded) {
  Rng rng(4);
  const auto model = VariationModel::uniform(0.15);
  Matrix m(20, 20, 2.0);
  model.perturb(m, rng);
  bool any_changed = false;
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_GE(m(i, j), 2.0 * 0.85);
      EXPECT_LE(m(i, j), 2.0 * 1.15);
      if (m(i, j) != 2.0) any_changed = true;
    }
  EXPECT_TRUE(any_changed);
}

TEST(Variation, DrawsDifferPerWrite) {
  // §4.3: "process variation differs from each time of writing".
  Rng rng(5);
  const auto model = VariationModel::uniform(0.1);
  const double a = model.perturb(1.0, rng);
  const double b = model.perturb(1.0, rng);
  EXPECT_NE(a, b);
}

TEST(Variation, LogNormalSpreadTracksMagnitude) {
  Rng rng(6);
  const VariationModel model(VariationKind::kLogNormal, 0.15);
  double sum = 0.0, sum_sq = 0.0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    const double v = model.perturb(1.0, rng);
    EXPECT_GT(v, 0.0);  // multiplicative: never flips sign
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / trials;
  const double stddev = std::sqrt(sum_sq / trials - mean * mean);
  EXPECT_NEAR(stddev, 0.05, 0.005);  // sigma = magnitude / 3
}

TEST(Variation, RejectsInvalidMagnitude) {
  EXPECT_THROW(VariationModel::uniform(-0.1), ConfigError);
  EXPECT_THROW(VariationModel::uniform(1.0), ConfigError);
  EXPECT_THROW(VariationModel(VariationKind::kNone, 0.1), ConfigError);
}

TEST(Variation, ZeroValueStaysZero) {
  Rng rng(7);
  const auto model = VariationModel::uniform(0.2);
  EXPECT_DOUBLE_EQ(model.perturb(0.0, rng), 0.0);
}

}  // namespace
}  // namespace memlp::mem
