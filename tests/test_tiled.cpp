// Tests for the tiled (NoC-coordinated) crossbar matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "noc/tiled.hpp"

namespace memlp::noc {
namespace {

TiledConfig ideal_tiled(std::size_t tile_dim,
                        TopologyKind kind = TopologyKind::kHierarchical) {
  TiledConfig config;
  config.tile_dim = tile_dim;
  config.topology = kind;
  config.xbar.variation = mem::VariationModel::none();
  config.xbar.conductance_levels = 1 << 20;
  config.xbar.io_bits = 0;
  return config;
}

Matrix random_nonneg(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(0.0, 2.0);
  return m;
}

TEST(Tiled, PartitionsIntoExpectedTileCount) {
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(1));
  tiled.program(Matrix(10, 7, 1.0));
  // rows: ceil(10/4)=3 blocks, cols: ceil(7/4)=2 blocks.
  EXPECT_EQ(tiled.num_tiles(), 6u);
  EXPECT_EQ(tiled.rows(), 10u);
  EXPECT_EQ(tiled.cols(), 7u);
}

TEST(Tiled, AssembledEffectiveMatchesIdeal) {
  Rng rng(2);
  const Matrix a = random_nonneg(9, 11, rng);
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(3));
  tiled.program(a);
  const Matrix effective = tiled.assemble_effective();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_NEAR(effective(i, j), a(i, j), 1e-5 * (1 + a(i, j)));
}

TEST(Tiled, MultiplyMatchesDenseMvm) {
  Rng rng(4);
  const Matrix a = random_nonneg(13, 9, rng);
  TiledCrossbarMatrix tiled(ideal_tiled(5), Rng(5));
  tiled.program(a);
  Vec x(9);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = tiled.multiply(x);
  const Vec expected = gemv(tiled.assemble_effective(), x);
  ASSERT_EQ(y.size(), 13u);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-10);
}

TEST(Tiled, MultiplyTransposedMatchesDense) {
  Rng rng(6);
  const Matrix a = random_nonneg(8, 14, rng);
  TiledCrossbarMatrix tiled(ideal_tiled(6), Rng(7));
  tiled.program(a);
  Vec x(8);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const Vec y = tiled.multiply_transposed(x);
  const Vec expected = gemv_transposed(tiled.assemble_effective(), x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-10);
}

TEST(Tiled, CompositeSolveMatchesDenseSolve) {
  Rng rng(8);
  Matrix a = random_nonneg(10, 10, rng);
  for (std::size_t i = 0; i < 10; ++i) a(i, i) += 10.0;
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(9));
  tiled.program(a);
  Vec b(10);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = tiled.solve(b);
  ASSERT_TRUE(x.has_value());
  const Vec expected = lu_solve(tiled.assemble_effective(), b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR((*x)[i], expected[i], 1e-9);
  EXPECT_EQ(tiled.noc_stats().global_settles, 1u);
}

TEST(Tiled, UpdateBlockDispatchesAcrossTileBoundaries) {
  Rng rng(10);
  const Matrix a = random_nonneg(8, 8, rng);
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(11));
  tiled.program(a);
  // A block straddling all four tiles.
  Matrix block(4, 4, 1.7);
  tiled.update_block(2, 2, block);
  const Matrix effective = tiled.assemble_effective();
  for (std::size_t i = 2; i < 6; ++i)
    for (std::size_t j = 2; j < 6; ++j)
      EXPECT_NEAR(effective(i, j), 1.7, 1e-4);
  // Untouched corner survives.
  EXPECT_NEAR(effective(0, 0), a(0, 0), 1e-4 * (1 + a(0, 0)));
}

TEST(Tiled, BlockJacobiSolvesDominantSystem) {
  Rng rng(12);
  const std::size_t n = 12;
  Matrix a = random_nonneg(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0 * static_cast<double>(n);
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(13));
  tiled.program(a);
  Vec b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto result = tiled.solve_block_jacobi(b);
  EXPECT_TRUE(result.converged);
  const Vec expected = lu_solve(tiled.assemble_effective(), b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(result.x[i], expected[i], 1e-6);
}

// Regression: the convergence residual is a controller-side decision and is
// computed against the effective matrix directly. Routing it through
// multiply() (as the old code did) pushes it across the ADC: with a coarse
// I/O boundary the quantization error of the readout dominates the true
// residual, the check can never observe convergence, and every sweep is
// charged a full extra MVM's worth of tile settles and NoC traffic.
TEST(Tiled, BlockJacobiConvergesDespiteCoarseIoBits) {
  Rng rng(16);
  const std::size_t n = 12;
  Matrix a = random_nonneg(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0 * static_cast<double>(n);
  TiledConfig config = ideal_tiled(4);
  config.xbar.io_bits = 4;  // 16 codes: a deliberately brutal ADC
  TiledCrossbarMatrix tiled(config, Rng(17));
  tiled.program(a);
  Vec b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  BlockSolveOptions options;
  options.tolerance = 5e-2;
  const auto result = tiled.solve_block_jacobi(b, options);
  ASSERT_TRUE(result.converged);
  const double threshold = options.tolerance * std::max(1.0, norm_inf(b));
  EXPECT_LE(result.residual_inf, threshold);

  // Exactly nb² settles per sweep (nb·(nb−1) off-diagonal MVMs + nb diagonal
  // solves) — the residual check adds none.
  const std::size_t nb = 3;  // ceil(12 / 4)
  EXPECT_EQ(tiled.noc_stats().tile_settles, result.sweeps * nb * nb);

  // The old multiply()-based readout of the same converged iterate is
  // quantization-dominated and sits above the threshold it must beat.
  const Vec quantized_readout = sub(tiled.multiply(result.x), b);
  EXPECT_GT(norm_inf(quantized_readout), threshold);
}

TEST(Tiled, BlockJacobiRequiresSquareGrid) {
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(14));
  tiled.program(Matrix(8, 8, 1.0));
  EXPECT_NO_THROW((void)tiled.solve_block_jacobi(Vec(8, 1.0)));
  TiledCrossbarMatrix rect(ideal_tiled(5), Rng(15));
  rect.program(Matrix(8, 6, 1.0));
  EXPECT_THROW((void)rect.solve_block_jacobi(Vec(8, 1.0)),
               ContractViolation);
}

TEST(Tiled, TransfersAreCharged) {
  Rng rng(16);
  const Matrix a = random_nonneg(8, 8, rng);
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(17));
  tiled.program(a);
  tiled.reset_stats();
  (void)tiled.multiply(Vec(8, 1.0));
  const auto& stats = tiled.noc_stats();
  EXPECT_GT(stats.transfers, 0u);
  EXPECT_GT(stats.value_hops, 0u);
  EXPECT_EQ(stats.tile_settles, 4u);  // 2x2 grid of tiles
}

TEST(Tiled, MeshAndHierarchyAgreeFunctionally) {
  Rng rng(18);
  const Matrix a = random_nonneg(12, 12, rng);
  Vec x(12);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);

  TiledCrossbarMatrix hier(ideal_tiled(4, TopologyKind::kHierarchical),
                           Rng(19));
  TiledCrossbarMatrix mesh(ideal_tiled(4, TopologyKind::kMesh), Rng(19));
  hier.program(a);
  mesh.program(a);
  const Vec yh = hier.multiply(x);
  const Vec ym = mesh.multiply(x);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(yh[i], ym[i], 1e-9);
}

TEST(Tiled, RejectsNegativeAndZeroTileDim) {
  EXPECT_THROW(TiledCrossbarMatrix(TiledConfig{0, TopologyKind::kMesh, {}},
                                   Rng(20)),
               ConfigError);
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(21));
  EXPECT_THROW(tiled.program(Matrix{{-1.0}}), ContractViolation);
}

TEST(Tiled, CrossbarStatsAggregateOverTiles) {
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(22));
  tiled.program(Matrix(8, 8, 1.0));
  const auto stats = tiled.crossbar_stats();
  EXPECT_EQ(stats.full_programs, 4u);
  EXPECT_EQ(stats.cells_written, 64u);
}

TEST(Tiled, UpdateCellsMatchesUpdateBlockWrites) {
  // The batched scattered-cell path must produce the same effective matrix
  // as per-cell update_block dispatches (same per-tile write order).
  Rng rng(30);
  const std::size_t n = 10;
  const Matrix a = random_nonneg(n, n, rng);
  TiledCrossbarMatrix batched(ideal_tiled(4), Rng(31));
  TiledCrossbarMatrix blocks(ideal_tiled(4), Rng(31));
  batched.program(a, 4.0);
  blocks.program(a, 4.0);

  std::vector<xbar::CellUpdate> updates;
  for (std::size_t j = 0; j < n; ++j)
    updates.push_back({j, j, rng.uniform(0.1, 2.0)});
  batched.update_cells(updates);
  Matrix single(1, 1);
  for (const xbar::CellUpdate& u : updates) {
    single(0, 0) = u.value;
    blocks.update_block(u.row, u.col, single);
  }
  EXPECT_EQ(batched.assemble_effective(), blocks.assemble_effective());
}

TEST(Tiled, SettleCacheSurvivesNoOpWritesAndFollowsRealOnes) {
  TiledConfig config = ideal_tiled(4);
  config.xbar.conductance_levels = 256;  // coarse: easy no-op writes
  Rng rng(32);
  const std::size_t n = 8;
  const Matrix a = random_nonneg(n, n, rng);
  TiledCrossbarMatrix tiled(config, Rng(33));
  tiled.program(a, 4.0);
  Vec b(n, 1.0);
  ASSERT_TRUE(tiled.solve(b).has_value());
  EXPECT_EQ(tiled.settle_cache_stats().full_factorizations, 1u);

  // Same-level rewrite: no tile reports a change, the factor survives.
  const xbar::CellUpdate noop{3, 3, a(3, 3) * (1.0 + 1e-9)};
  tiled.update_cells({&noop, 1});
  ASSERT_TRUE(tiled.solve(b).has_value());
  EXPECT_EQ(tiled.settle_cache_stats().full_factorizations, 1u);
  EXPECT_GE(tiled.settle_cache_stats().prepare_hits, 1u);

  // Real write: the next settle re-factors (exact mode).
  const xbar::CellUpdate real{3, 3, a(3, 3) + 1.0};
  tiled.update_cells({&real, 1});
  const auto x = tiled.solve(b);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(tiled.settle_cache_stats().full_factorizations, 2u);
  const Vec expected = LuFactorization(tiled.assemble_effective()).solve(b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR((*x)[i], expected[i], 1e-12);
}

TEST(Tiled, ReuseModeMatchesExactAcrossIterations) {
  TiledConfig exact_cfg = ideal_tiled(4);
  exact_cfg.xbar.settle_mode = xbar::SettleMode::kExact;
  TiledConfig reuse_cfg = ideal_tiled(4);
  reuse_cfg.xbar.settle_mode = xbar::SettleMode::kReuse;
  Rng rng(34);
  const std::size_t n = 12;
  const Matrix a = random_nonneg(n, n, rng);
  TiledCrossbarMatrix exact(exact_cfg, Rng(35));
  TiledCrossbarMatrix reuse(reuse_cfg, Rng(35));
  exact.program(a, 4.0);
  reuse.program(a, 4.0);

  for (std::size_t iteration = 0; iteration < 5; ++iteration) {
    std::vector<xbar::CellUpdate> updates;
    for (std::size_t j = 0; j < 3; ++j)
      updates.push_back({j, j, rng.uniform(0.2, 2.0)});
    exact.update_cells(updates);
    reuse.update_cells(updates);
    Vec b(n);
    for (double& v : b) v = rng.uniform(-1.0, 1.0);
    const auto x_exact = exact.solve(b);
    const auto x_reuse = reuse.solve(b);
    ASSERT_TRUE(x_exact.has_value());
    ASSERT_TRUE(x_reuse.has_value());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR((*x_reuse)[i], (*x_exact)[i],
                  1e-9 * (1.0 + std::abs((*x_exact)[i])))
          << "row " << i << " it " << iteration;
  }
  EXPECT_GE(reuse.settle_cache_stats().incremental_updates, 3u);
}

TEST(Tiled, FailedGlobalSettleAccounting) {
  TiledCrossbarMatrix tiled(ideal_tiled(4), Rng(36));
  tiled.program(Matrix(8, 8, 1.0));  // rank-1 composite: singular
  const Vec b(8, 1.0);
  const auto before = tiled.noc_stats();
  EXPECT_FALSE(tiled.solve(b).has_value());
  const auto after = tiled.noc_stats();
  EXPECT_EQ(after.failed_global_settles, 1u);
  // No settle happened: no global settle counted, no boundary transfers.
  EXPECT_EQ(after.global_settles, before.global_settles);
  EXPECT_EQ(after.transfers, before.transfers);
}

}  // namespace
}  // namespace memlp::noc
