// Tests for the large-scale crossbar solver (Algorithm 2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/ls_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

LsPdipOptions ideal_hardware() {
  LsPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::none();
  options.hardware.crossbar.conductance_levels = 1 << 20;
  options.hardware.crossbar.io_bits = 0;
  return options;
}

LsPdipOptions paper_hardware(double variation) {
  LsPdipOptions options;
  if (variation > 0.0)
    options.hardware.crossbar.variation =
        mem::VariationModel::uniform(variation);
  else
    options.hardware.crossbar.variation = mem::VariationModel::none();
  return options;
}

TEST(BalancedM1, StructureFollowsEq16c) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, -2}, {3, 4}, {5, 6}};  // m=3, n=2 (m > n: RU)
  problem.b = {1, 2, 3};
  problem.c = {1, 1};
  Rng rng(1);
  const Matrix m1 =
      build_balanced_m1(problem, 0.01, BalancingFill::kAuto, rng);
  ASSERT_EQ(m1.rows(), 5u);
  ASSERT_EQ(m1.cols(), 5u);
  // A block in place.
  EXPECT_DOUBLE_EQ(m1(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m1(0, 1), -2.0);
  // Aᵀ block in place.
  EXPECT_DOUBLE_EQ(m1(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(m1(4, 2), -2.0);
  // RU (m×m) filled with small positives; RL (n×n) left zero for m > n.
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_GT(m1(i, 2 + k), 0.0);
      EXPECT_LT(m1(i, 2 + k), 0.1);
    }
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t k = 0; k < 2; ++k) EXPECT_DOUBLE_EQ(m1(3 + j, k), 0.0);
}

TEST(BalancedM1, BothFillCoversBothBlocks) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 2}, {3, 4}};  // square: both filled in kAuto too
  problem.b = {1, 2};
  problem.c = {1, 1};
  Rng rng(2);
  const Matrix m1 =
      build_balanced_m1(problem, 0.05, BalancingFill::kBoth, rng);
  EXPECT_GT(m1(0, 2), 0.0);  // RU
  EXPECT_GT(m1(2, 0), 0.0);  // RL
}

TEST(LsPdip, SolvesTextbookProblem) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto outcome = solve_ls_pdip(problem, ideal_hardware());
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  // Algorithm 2 trades accuracy for scalability (§4.3: "acceptable
  // accuracy"); allow a few percent even on ideal hardware.
  EXPECT_LT(lp::relative_error(outcome.result.objective, 36.0), 0.05);
}

class LsAccuracySweep : public ::testing::TestWithParam<int> {};

TEST_P(LsAccuracySweep, WithinPaperAccuracyBand) {
  const double variation = GetParam() / 100.0;
  Rng rng(10);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  auto options = paper_hardware(variation);
  options.seed = 99;
  const auto outcome = solve_ls_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal)
      << "variation " << variation;
  // Paper: 0.8%–8.5% relative error; margin for small sizes.
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.15)
      << "variation " << variation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LsAccuracySweep,
                         ::testing::Values(0, 5, 10, 20));

TEST(LsPdip, DetectsInfeasibility) {
  Rng rng(11);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_infeasible(generator, rng);
  const auto outcome = solve_ls_pdip(problem, paper_hardware(0.10));
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kInfeasible);
}

TEST(LsPdip, M1IsProgrammedOncePerAttempt) {
  Rng rng(12);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  const auto problem = lp::random_feasible(generator, rng);
  const auto outcome = solve_ls_pdip(problem, paper_hardware(0.0));
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  // M1 + M2 initial programs per attempt; nothing else reprograms fully.
  EXPECT_EQ(outcome.stats.backend.xbar.full_programs,
            2 * outcome.stats.attempts);
}

TEST(LsPdip, IterativeWritesAreOrderNPerIteration) {
  Rng rng(13);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto outcome = solve_ls_pdip(problem, paper_hardware(0.0));
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  const auto iterative =
      outcome.stats.backend.since(outcome.stats.programming);
  const std::size_t n_plus_m =
      problem.num_variables() + problem.num_constraints();
  // Only M2's diagonal (n+m cells) is rewritten per iteration (§3.5).
  EXPECT_LE(iterative.xbar.cells_written,
            outcome.stats.iterations * n_plus_m);
}

TEST(LsPdip, SmallerSystemThanAlgorithm1) {
  Rng rng(14);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto outcome = solve_ls_pdip(problem, ideal_hardware());
  // M1 dim <= (n+m) + (n+m) compensations, vs 2(n+m)+p for Algorithm 1.
  const std::size_t n_plus_m =
      problem.num_variables() + problem.num_constraints();
  EXPECT_LE(outcome.stats.system_dim, 2 * n_plus_m);
}

TEST(LsPdip, RetrySchemeIsBounded) {
  Rng rng(15);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  LsPdipOptions options = paper_hardware(0.20);
  options.max_retries = 2;
  const auto outcome = solve_ls_pdip(problem, options);
  EXPECT_LE(outcome.stats.attempts, 3u);
}

TEST(LsPdip, DeterministicForFixedSeed) {
  Rng rng(16);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  auto options = paper_hardware(0.10);
  options.seed = 321;
  const auto first = solve_ls_pdip(problem, options);
  const auto second = solve_ls_pdip(problem, options);
  EXPECT_EQ(first.result.status, second.result.status);
  EXPECT_DOUBLE_EQ(first.result.objective, second.result.objective);
}

TEST(LsPdip, NocBackendForLargeM1) {
  Rng rng(17);
  lp::GeneratorOptions generator;
  generator.constraints = 18;
  const auto problem = lp::random_feasible(generator, rng);
  auto options = ideal_hardware();
  options.hardware.force_noc = true;
  options.hardware.tile_dim = 12;
  const auto outcome = solve_ls_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(outcome.stats.backend.num_tiles, 1u);
}

TEST(LsPdip, RejectsInvalidTheta) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0}};
  problem.b = {1.0};
  problem.c = {1.0};
  LsPdipOptions options;
  options.theta = 1.5;
  EXPECT_THROW((void)solve_ls_pdip(problem, options), ContractViolation);
}

}  // namespace
}  // namespace memlp::core
