// Tests for the CSR sparse matrix, the LDLT factorization, and the
// normal-equations PDIP variant they back.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pdip.hpp"
#include "linalg/ldlt.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp {
namespace {

TEST(Csr, FromDenseRoundTrip) {
  const Matrix dense{{1, 0, 2}, {0, 0, 0}, {-3, 4, 0}};
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 4u);
  EXPECT_EQ(csr.to_dense(), dense);
  EXPECT_DOUBLE_EQ(csr.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(csr.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 0), -3.0);
}

TEST(Csr, ThresholdDropsSmallEntries) {
  const Matrix dense{{1.0, 1e-15}, {1e-15, 2.0}};
  const CsrMatrix csr = CsrMatrix::from_dense(dense, 1e-12);
  EXPECT_EQ(csr.nnz(), 2u);
}

TEST(Csr, FromTripletsSumsDuplicates) {
  const CsrMatrix csr = CsrMatrix::from_triplets(
      2, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 2, -1.0}, {1, 0, 4.0}});
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(1, 0), 4.0);
  std::vector<CsrMatrix::Triplet> out_of_range{{2, 0, 1.0}};
  EXPECT_THROW((void)CsrMatrix::from_triplets(2, 2, out_of_range),
               DimensionError);
}

TEST(Csr, DensityAccounting) {
  EXPECT_DOUBLE_EQ(CsrMatrix().density(), 0.0);
  const CsrMatrix csr =
      CsrMatrix::from_dense(Matrix{{1, 0}, {0, 1}});
  EXPECT_DOUBLE_EQ(csr.density(), 0.5);
}

class CsrMvmSweep : public ::testing::TestWithParam<double> {};

TEST_P(CsrMvmSweep, MatchesDenseAcrossSparsity) {
  const double sparsity = GetParam();
  Rng rng(static_cast<std::uint64_t>(sparsity * 100) + 5);
  Matrix dense(17, 11);
  for (std::size_t i = 0; i < dense.rows(); ++i)
    for (std::size_t j = 0; j < dense.cols(); ++j)
      if (rng.uniform() > sparsity) dense(i, j) = rng.normal();
  const CsrMatrix csr = CsrMatrix::from_dense(dense);
  Vec x(11);
  for (double& v : x) v = rng.normal();
  Vec xt(17);
  for (double& v : xt) v = rng.normal();
  const Vec y_sparse = csr.multiply(x);
  const Vec y_dense = gemv(dense, x);
  const Vec yt_sparse = csr.multiply_transposed(xt);
  const Vec yt_dense = gemv_transposed(dense, xt);
  for (std::size_t i = 0; i < y_dense.size(); ++i)
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
  for (std::size_t j = 0; j < yt_dense.size(); ++j)
    EXPECT_NEAR(yt_sparse[j], yt_dense[j], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsrMvmSweep,
                         ::testing::Values(0.0, 0.3, 0.7, 0.95, 1.0));

TEST(Ldlt, SolvesSpdSystem) {
  // A = Bᵀ·B + I is SPD.
  Rng rng(1);
  Matrix b(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) b(i, j) = rng.normal();
  Matrix a = gemm(b.transposed(), b);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 1.0;
  const LdltFactorization ldlt(a);
  ASSERT_FALSE(ldlt.failed());
  Vec rhs(6);
  for (double& v : rhs) v = rng.normal();
  const Vec x = ldlt.solve(rhs);
  const Vec expected = lu_solve(a, rhs);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], expected[i], 1e-8);
}

TEST(Ldlt, FailsOnIndefiniteInput) {
  const Matrix indefinite{{0.0, 1.0}, {1.0, 0.0}};
  const LdltFactorization ldlt(indefinite);
  EXPECT_TRUE(ldlt.failed());
}

TEST(Ldlt, RequiresSquare) {
  EXPECT_THROW(LdltFactorization(Matrix(2, 3)), DimensionError);
}

class NormalEquationsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NormalEquationsSweep, MatchesFullKktVariant) {
  Rng rng(700 + GetParam());
  lp::GeneratorOptions generator;
  generator.constraints = GetParam();
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  core::PdipOptions normal;
  normal.newton = core::NewtonFactorization::kNormalEquations;
  const auto via_normal = core::solve_pdip(problem, normal);
  ASSERT_EQ(via_normal.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(via_normal.objective, reference.objective),
            1e-4);

  const auto via_kkt = core::solve_pdip(problem);
  ASSERT_EQ(via_kkt.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(via_normal.objective, via_kkt.objective),
            1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalEquationsSweep,
                         ::testing::Values(4, 12, 24, 48));

TEST(NormalEquations, DetectsInfeasibility) {
  Rng rng(2);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_infeasible(generator, rng);
  core::PdipOptions options;
  options.newton = core::NewtonFactorization::kNormalEquations;
  EXPECT_EQ(core::solve_pdip(problem, options).status,
            lp::SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace memlp
