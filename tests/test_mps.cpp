// MPS ingest: fixed- and free-format parsing, RANGES/BOUNDS canonicalization,
// typed parse errors with exact file:line locations, and the
// LinearProgram -> to_mps -> read_mps exact round trip over the generator
// family. Fixture files live under tests/data/mps/ (MEMLP_MPS_FIXTURES).
#include "lp/mps.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::lp {
namespace {

std::string fixture(const std::string& name) {
  return std::string(MEMLP_MPS_FIXTURES) + "/" + name;
}

TEST(Mps, ReadsFixedFormatMinimizeFixture) {
  const MpsModel model = read_mps_file(fixture("textbook.mps"));
  EXPECT_EQ(model.name, "TEXTBOOK");
  EXPECT_EQ(model.objective_name, "COST");
  EXPECT_FALSE(model.maximize);
  ASSERT_EQ(model.problem.num_variables(), 2u);
  ASSERT_EQ(model.problem.num_constraints(), 3u);
  ASSERT_EQ(model.variable_names.size(), 2u);
  EXPECT_EQ(model.variable_names[0], "X1");
  // MINIMIZE negates c into canonical max form.
  EXPECT_DOUBLE_EQ(model.problem.c[0], 3.0);
  EXPECT_DOUBLE_EQ(model.problem.c[1], 5.0);
  EXPECT_DOUBLE_EQ(model.problem.a(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(model.problem.b[2], 18.0);

  const auto result = solvers::solve_simplex(model.problem);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-9);
  // The caller-facing objective restores the MPS file's MIN sense.
  EXPECT_NEAR(model.original_objective(result.x), -36.0, 1e-9);
}

TEST(Mps, ReadsFreeFormatWithRangesAndBounds) {
  const MpsModel model = read_mps_file(fixture("ranged.mps"));
  EXPECT_TRUE(model.maximize);
  ASSERT_EQ(model.problem.num_variables(), 2u);
  // GROW in [2,6] -> 2 rows, EROW in [1,3] -> 2 rows, UP x1 -> 1 row,
  // LO x2 0.5 -> 1 row; PL adds nothing.
  ASSERT_EQ(model.problem.num_constraints(), 6u);

  const auto result = solvers::solve_simplex(model.problem);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 9.0, 1e-9);
  EXPECT_NEAR(model.original_objective(result.x), 9.0, 1e-9);
  EXPECT_NEAR(result.x[0], 3.0, 1e-9);
  EXPECT_NEAR(result.x[1], 3.0, 1e-9);
}

TEST(Mps, ObjectiveRhsShiftsTheReportedObjective) {
  std::istringstream in(
      "NAME SHIFT\n"
      "ROWS\n"
      " N COST\n"
      " L R1\n"
      "COLUMNS\n"
      " X1 COST -1.0 R1 1.0\n"
      "RHS\n"
      " RHS R1 5.0 COST 2.5\n"
      "ENDATA\n");
  const MpsModel model = read_mps(in, "shift.mps");
  EXPECT_DOUBLE_EQ(model.objective_rhs, 2.5);
  const auto result = solvers::solve_simplex(model.problem);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  // min -x1 s.t. x1 <= 5: canonical max x1 -> 5, original -5 - 2.5.
  EXPECT_NEAR(model.original_objective(result.x), -7.5, 1e-9);
}

TEST(Mps, FortranExponentsAreAccepted) {
  std::istringstream in(
      "NAME FORTRAN\n"
      "ROWS\n"
      " N COST\n"
      " L R1\n"
      "COLUMNS\n"
      " X1 COST -1.0D0 R1 2.5D-1\n"
      "RHS\n"
      " RHS R1 1D1\n"
      "ENDATA\n");
  const MpsModel model = read_mps(in, "fortran.mps");
  EXPECT_DOUBLE_EQ(model.problem.a(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(model.problem.b[0], 10.0);
}

// --- typed errors anchored at exact file:line ---------------------------

template <typename Fn>
MpsError expect_mps_error(Fn&& fn) {
  try {
    fn();
  } catch (const MpsError& e) {
    return e;
  }
  ADD_FAILURE() << "expected MpsError";
  return MpsError(MpsError::Kind::kSyntax, "", 0, "");
}

TEST(MpsErrors, BadNumberNamesTheLine) {
  const MpsError e =
      expect_mps_error([] { read_mps_file(fixture("bad_number.mps")); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kNumber);
  EXPECT_EQ(e.line(), 6u);
  EXPECT_NE(std::string(e.what()).find("bad_number.mps:6"),
            std::string::npos);
}

TEST(MpsErrors, UnknownRowNamesTheLine) {
  const MpsError e =
      expect_mps_error([] { read_mps_file(fixture("bad_row.mps")); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kUnknownName);
  EXPECT_EQ(e.line(), 6u);
}

TEST(MpsErrors, UnknownSectionHeader) {
  const MpsError e =
      expect_mps_error([] { read_mps_file(fixture("bad_section.mps")); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kSection);
  EXPECT_EQ(e.line(), 2u);
}

TEST(MpsErrors, FreeBoundIsTypedUnsupported) {
  const MpsError e =
      expect_mps_error([] { read_mps_file(fixture("bad_free_bound.mps")); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kUnsupported);
  EXPECT_EQ(e.line(), 10u);
}

TEST(MpsErrors, IntegralityMarkersAreUnsupported) {
  std::istringstream in(
      "NAME MARKED\n"
      "ROWS\n"
      " N COST\n"
      " L R1\n"
      "COLUMNS\n"
      " MARKER 'MARKER' 'INTORG'\n"
      "ENDATA\n");
  const MpsError e =
      expect_mps_error([&] { read_mps(in, "marked.mps"); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kUnsupported);
  EXPECT_EQ(e.line(), 6u);
}

TEST(MpsErrors, MissingObjectiveRow) {
  std::istringstream in(
      "NAME NOOBJ\n"
      "ROWS\n"
      " L R1\n"
      "COLUMNS\n"
      " X1 R1 1.0\n"
      "ENDATA\n");
  const MpsError e = expect_mps_error([&] { read_mps(in, "noobj.mps"); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kSection);
}

TEST(MpsErrors, DataLineOutsideSection) {
  std::istringstream in(
      "NAME STRAY\n"
      " X1 COST 1.0\n"
      "ENDATA\n");
  const MpsError e = expect_mps_error([&] { read_mps(in, "stray.mps"); });
  EXPECT_EQ(e.kind(), MpsError::Kind::kSection);
  EXPECT_EQ(e.line(), 2u);
}

// --- exact round trip over the generator family -------------------------

void expect_round_trip(const LinearProgram& problem) {
  const std::string text = to_mps(problem, "ROUNDTRIP");
  std::istringstream in(text);
  const MpsModel model = read_mps(in, "roundtrip.mps");
  EXPECT_TRUE(model.maximize);  // canonical form is max
  ASSERT_EQ(model.problem.num_constraints(), problem.num_constraints());
  ASSERT_EQ(model.problem.num_variables(), problem.num_variables());
  // CSR canonical form makes the comparison exact structural equality.
  EXPECT_TRUE(model.problem.a == problem.a);
  EXPECT_EQ(model.problem.b, problem.b);
  EXPECT_EQ(model.problem.c, problem.c);
}

TEST(MpsRoundTrip, RandomFeasible) {
  Rng rng(7);
  GeneratorOptions options;
  options.constraints = 12;
  options.sparsity = 0.5;
  expect_round_trip(random_feasible(options, rng));
}

TEST(MpsRoundTrip, MultiCommodityFlow) {
  Rng rng(11);
  expect_round_trip(multi_commodity_flow(3, 3, 4, rng));
}

TEST(MpsRoundTrip, BlockDiagonal) {
  Rng rng(13);
  expect_round_trip(block_diagonal(4, 6, 3, rng));
}

TEST(MpsRoundTrip, Banded) {
  Rng rng(17);
  expect_round_trip(banded(24, 2, rng));
}

}  // namespace
}  // namespace memlp::lp
