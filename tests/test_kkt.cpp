// Tests for the shared PDIP pieces: Eq. (12) assembly, Eq. (8) µ,
// Eq. (11) θ.
#include <gtest/gtest.h>

#include "core/kkt.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp::core {
namespace {

lp::LinearProgram tiny() {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 2}, {3, 4}, {5, 6}};  // m=3, n=2
  problem.b = {7, 8, 9};
  problem.c = {1, 1};
  return problem;
}

TEST(PdipState, OnesInitialization) {
  const PdipState state = PdipState::ones(2, 3);
  EXPECT_EQ(state.x, (Vec{1, 1}));
  EXPECT_EQ(state.y, (Vec{1, 1, 1}));
  EXPECT_DOUBLE_EQ(state.gap(), 5.0);  // zᵀx + yᵀw = 2 + 3
  EXPECT_DOUBLE_EQ(state.mu(0.5), 0.5 * 5.0 / 5.0);
}

TEST(PdipState, ClampFloor) {
  PdipState state = PdipState::ones(2, 2);
  state.x[0] = -1.0;
  state.w[1] = 1e-30;
  state.clamp_floor(1e-10);
  EXPECT_DOUBLE_EQ(state.x[0], 1e-10);
  EXPECT_DOUBLE_EQ(state.w[1], 1e-10);
  EXPECT_DOUBLE_EQ(state.x[1], 1.0);
}

TEST(Kkt, LayoutOffsets) {
  const KktLayout layout{2, 3};  // n=2, m=3
  EXPECT_EQ(layout.dim(), 10u);
  EXPECT_EQ(layout.col_x(), 0u);
  EXPECT_EQ(layout.col_y(), 2u);
  EXPECT_EQ(layout.col_w(), 5u);
  EXPECT_EQ(layout.col_z(), 8u);
  EXPECT_EQ(layout.row_primal(), 0u);
  EXPECT_EQ(layout.row_dual(), 3u);
  EXPECT_EQ(layout.row_xz(), 5u);
  EXPECT_EQ(layout.row_yw(), 7u);
}

TEST(Kkt, AssembleMatchesEq12BlockByBlock) {
  const auto problem = tiny();
  PdipState state = PdipState::ones(2, 3);
  state.x = {2, 3};
  state.z = {5, 7};
  state.y = {1, 2, 3};
  state.w = {4, 5, 6};
  const Matrix kkt = assemble_kkt(problem, state);
  const KktLayout layout{2, 3};
  ASSERT_EQ(kkt.rows(), 10u);
  // Block (1,1) = A.
  EXPECT_DOUBLE_EQ(kkt(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(kkt(2, 1), 6.0);
  // Block (1,3) = I.
  EXPECT_DOUBLE_EQ(kkt(0, layout.col_w() + 0), 1.0);
  EXPECT_DOUBLE_EQ(kkt(1, layout.col_w() + 0), 0.0);
  // Block (2,2) = Aᵀ.
  EXPECT_DOUBLE_EQ(kkt(layout.row_dual() + 0, layout.col_y() + 2), 5.0);
  // Block (2,4) = −I.
  EXPECT_DOUBLE_EQ(kkt(layout.row_dual() + 1, layout.col_z() + 1), -1.0);
  // Block (3,1) = Z, (3,4) = X.
  EXPECT_DOUBLE_EQ(kkt(layout.row_xz() + 0, layout.col_x() + 0), 5.0);
  EXPECT_DOUBLE_EQ(kkt(layout.row_xz() + 1, layout.col_z() + 1), 3.0);
  // Block (4,2) = W, (4,3) = Y.
  EXPECT_DOUBLE_EQ(kkt(layout.row_yw() + 2, layout.col_y() + 2), 6.0);
  EXPECT_DOUBLE_EQ(kkt(layout.row_yw() + 1, layout.col_w() + 1), 2.0);
}

TEST(Kkt, UpdateDiagonalsOnlyTouchesStateBlocks) {
  const auto problem = tiny();
  PdipState state = PdipState::ones(2, 3);
  Matrix kkt = assemble_kkt(problem, state);
  const Matrix before = kkt;
  state.x = {9, 9};
  state.y = {9, 9, 9};
  state.w = {9, 9, 9};
  state.z = {9, 9};
  update_kkt_diagonals(kkt, problem, state);
  const KktLayout layout{2, 3};
  std::size_t changed = 0;
  for (std::size_t i = 0; i < kkt.rows(); ++i)
    for (std::size_t j = 0; j < kkt.cols(); ++j)
      if (kkt(i, j) != before(i, j)) ++changed;
  EXPECT_EQ(changed, 2 * layout.dim() / 2);  // 2(n+m) diagonal cells
}

TEST(Kkt, RhsMatchesEq9) {
  const auto problem = tiny();
  const PdipState state = PdipState::ones(2, 3);
  const double mu = 0.25;
  const Vec rhs = kkt_rhs(problem, state, mu);
  const KktLayout layout{2, 3};
  // b − Ax − w with x = w = 1: b − rowsum(A) − 1.
  EXPECT_DOUBLE_EQ(rhs[0], 7.0 - 3.0 - 1.0);
  EXPECT_DOUBLE_EQ(rhs[2], 9.0 - 11.0 - 1.0);
  // c − Aᵀy + z with y = z = 1.
  EXPECT_DOUBLE_EQ(rhs[layout.row_dual() + 0], 1.0 - 9.0 + 1.0);
  // µ − XZe = µ − 1.
  EXPECT_DOUBLE_EQ(rhs[layout.row_xz() + 1], mu - 1.0);
  EXPECT_DOUBLE_EQ(rhs[layout.row_yw() + 2], mu - 1.0);
}

TEST(Kkt, NewtonStepSolvesLinearizedSystem) {
  // Solving the assembled system must reproduce Eq. (9) identities.
  const auto problem = tiny();
  const PdipState state = PdipState::ones(2, 3);
  const Matrix kkt = assemble_kkt(problem, state);
  const Vec rhs = kkt_rhs(problem, state, 0.1);
  const Vec delta = lu_solve(kkt, rhs);
  const KktLayout layout{2, 3};
  const StepDirection step = split_step(layout, delta);
  // Check Eq. (9a): A∆x + ∆w = rhs_primal.
  const Vec adx = problem.a.multiply(step.dx);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(adx[i] + step.dw[i], rhs[i], 1e-10);
  // Check Eq. (9c): Z∆x + X∆z = rhs_xz (X = Z = I here).
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_NEAR(step.dx[j] + step.dz[j], rhs[layout.row_xz() + j], 1e-10);
}

TEST(StepLength, FullStepWhenNothingBlocks) {
  const PdipState state = PdipState::ones(2, 2);
  StepDirection step;
  step.dx = {1.0, 0.5};
  step.dy = {0.0, 0.2};
  step.dw = {0.3, 0.0};
  step.dz = {0.1, 0.4};
  EXPECT_DOUBLE_EQ(step_length(state, step, 0.9), 0.9);
}

TEST(StepLength, BlocksAtBoundary) {
  const PdipState state = PdipState::ones(2, 2);
  StepDirection step;
  step.dx = {-2.0, 0.0};  // x_0 would hit zero at θ = 0.5
  step.dy = {0.0, 0.0};
  step.dw = {0.0, 0.0};
  step.dz = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(step_length(state, step, 0.9), 0.9 * 0.5);
}

TEST(StepLength, WorstComponentWins) {
  PdipState state = PdipState::ones(1, 1);
  state.w = {0.1};
  StepDirection step;
  step.dx = {-0.5};
  step.dy = {-0.5};
  step.dw = {-0.4};  // ratio 4: the binding one
  step.dz = {-0.5};
  EXPECT_DOUBLE_EQ(step_length(state, step, 0.9), 0.9 * 0.25);
}

TEST(StepLength, AppliedStepKeepsStatePositive) {
  PdipState state = PdipState::ones(3, 3);
  StepDirection step;
  step.dx = {-5.0, 1.0, -2.0};
  step.dy = {0.5, -3.0, 0.0};
  step.dw = {-1.0, -1.0, -1.0};
  step.dz = {2.0, 2.0, -8.0};
  const double theta = step_length(state, step, 0.95);
  apply_step(state, step, theta);
  for (double v : state.x) EXPECT_GT(v, 0.0);
  for (double v : state.y) EXPECT_GT(v, 0.0);
  for (double v : state.w) EXPECT_GT(v, 0.0);
  for (double v : state.z) EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace memlp::core
