// Tests for the LP problem type: validation, dual, residuals, α-check.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "lp/problem.hpp"
#include "lp/result.hpp"

namespace memlp::lp {
namespace {

LinearProgram tiny() {
  // max x1 + 2 x2  s.t.  x1 + x2 <= 4, x2 <= 3, x >= 0.
  LinearProgram lp;
  lp.a = Matrix{{1, 1}, {0, 1}};
  lp.b = {4, 3};
  lp.c = {1, 2};
  return lp;
}

TEST(Problem, ValidateAcceptsConsistentShapes) {
  EXPECT_NO_THROW(tiny().validate());
}

TEST(Problem, ValidateRejectsMismatches) {
  LinearProgram lp = tiny();
  lp.b.push_back(1.0);
  EXPECT_THROW(lp.validate(), DimensionError);
  lp = tiny();
  lp.c.pop_back();
  EXPECT_THROW(lp.validate(), DimensionError);
  lp = tiny();
  lp.a = Matrix();
  lp.b.clear();
  lp.c.clear();
  EXPECT_THROW(lp.validate(), DimensionError);
}

TEST(Problem, ObjectiveIsDotProduct) {
  EXPECT_DOUBLE_EQ(tiny().objective(Vec{1.0, 3.0}), 7.0);
}

TEST(Problem, DualSwapsShapes) {
  const LinearProgram lp = tiny();
  const LinearProgram dual = lp.dual();
  EXPECT_EQ(dual.num_constraints(), lp.num_variables());
  EXPECT_EQ(dual.num_variables(), lp.num_constraints());
  // Dual of max cᵀx s.t. Ax<=b is min bᵀy s.t. Aᵀy>=c, recast as
  // max (−b)ᵀy s.t. (−Aᵀ)y <= −c.
  EXPECT_DOUBLE_EQ(dual.a(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(dual.a(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(dual.b[0], -1.0);
  EXPECT_DOUBLE_EQ(dual.c[0], -4.0);
}

TEST(Problem, DualOfDualIsPrimal) {
  const LinearProgram lp = tiny();
  const LinearProgram again = lp.dual().dual();
  EXPECT_EQ(again.a, lp.a);
  EXPECT_EQ(again.b, lp.b);
  EXPECT_EQ(again.c, lp.c);
}

TEST(Problem, PrimalInfeasibilityMeasuresResidual) {
  const LinearProgram lp = tiny();
  // x = (1,1), w = (2,2): Ax + w − b = (1+1+2−4, 1+2−3) = (0, 0).
  EXPECT_DOUBLE_EQ(lp.primal_infeasibility(Vec{1, 1}, Vec{2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(lp.primal_infeasibility(Vec{1, 1}, Vec{2, 3}), 1.0);
}

TEST(Problem, DualInfeasibilityMeasuresResidual) {
  const LinearProgram lp = tiny();
  // Aᵀy − z − c with y=(1,1), z=(0,0): (1−1, 2−2) = (0,0).
  EXPECT_DOUBLE_EQ(lp.dual_infeasibility(Vec{1, 1}, Vec{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(lp.dual_infeasibility(Vec{1, 0}, Vec{0, 0}), 1.0);
}

TEST(Problem, DualityGap) {
  EXPECT_DOUBLE_EQ(
      LinearProgram::duality_gap(Vec{1, 2}, Vec{3, 4}, Vec{1}, Vec{5}),
      3 + 8 + 5);
}

TEST(Problem, ConstraintCheckHonoursAlpha) {
  const LinearProgram lp = tiny();
  EXPECT_TRUE(lp.satisfies_constraints(Vec{1, 1}));
  EXPECT_FALSE(lp.satisfies_constraints(Vec{5, 5}, 1.02));
  // Slightly over b: rejected at alpha=1+1e-9, accepted at alpha=1.1.
  EXPECT_FALSE(lp.satisfies_constraints(Vec{1.2, 3.0}, 1.0 + 1e-9));
  EXPECT_TRUE(lp.satisfies_constraints(Vec{1.2, 3.0}, 1.1));
}

TEST(Problem, ConstraintCheckRejectsNegativeVariables) {
  const LinearProgram lp = tiny();
  EXPECT_FALSE(lp.satisfies_constraints(Vec{-0.5, 1.0}));
  // Tiny numerical negatives are tolerated.
  EXPECT_TRUE(lp.satisfies_constraints(Vec{-1e-9, 1.0}));
}

TEST(Problem, ConstraintCheckNegativeRhs) {
  LinearProgram lp;
  lp.a = Matrix{{-1.0}};
  lp.b = {-2.0};  // −x <= −2  ⇔  x >= 2
  lp.c = {1.0};
  EXPECT_TRUE(lp.satisfies_constraints(Vec{2.5}, 1.02));
  EXPECT_FALSE(lp.satisfies_constraints(Vec{1.0}, 1.02));
  // α loosens (not tightens) the bound for negative b too.
  EXPECT_TRUE(lp.satisfies_constraints(Vec{1.97}, 1.02));
}

TEST(SolveStatus, ToStringCoversAll) {
  EXPECT_EQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_EQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_EQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
  EXPECT_EQ(to_string(SolveStatus::kNumericalFailure), "numerical-failure");
}

TEST(Result, RelativeErrorDefinition) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(-9.0, -10.0), 0.1);
  // Small references are floored at 1 to avoid blow-up.
  EXPECT_DOUBLE_EQ(relative_error(0.3, 0.1), 0.2);
}

}  // namespace
}  // namespace memlp::lp
