// Tests for the two-phase simplex reference solver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/ops.hpp"
#include "lp/problem.hpp"
#include "solvers/simplex.hpp"

namespace memlp::solvers {
namespace {

TEST(Simplex, TextbookProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 — optimum 36 at (2, 6).
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 36.0, 1e-9);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 6.0, 1e-9);
}

TEST(Simplex, SingleVariable) {
  lp::LinearProgram problem;
  problem.a = Matrix{{2.0}};
  problem.b = {10.0};
  problem.c = {3.0};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 15.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with only x − y <= 1: increase both without bound.
  lp::LinearProgram problem;
  problem.a = Matrix{{1, -1}};
  problem.b = {1};
  problem.c = {1, 0};
  EXPECT_EQ(solve_simplex(problem).status, lp::SolveStatus::kUnbounded);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and −x <= −2 (x >= 2).
  lp::LinearProgram problem;
  problem.a = Matrix{{1}, {-1}};
  problem.b = {1, -2};
  problem.c = {1};
  EXPECT_EQ(solve_simplex(problem).status, lp::SolveStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsNeedsPhaseOne) {
  // −x1 − x2 <= −2 (x1 + x2 >= 2), x1 <= 3, x2 <= 3; max x1 − x2 → (3, 0)?
  // Constraint x1 + x2 >= 2 is satisfied at (3,0); optimum 3.
  lp::LinearProgram problem;
  problem.a = Matrix{{-1, -1}, {1, 0}, {0, 1}};
  problem.b = {-2, 3, 3};
  problem.c = {1, -1};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 3.0, 1e-9);
  EXPECT_NEAR(result.x[0], 3.0, 1e-9);
  EXPECT_NEAR(result.x[1], 0.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the optimum.
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 1}, {1, 1}, {2, 2}, {1, 0}};
  problem.b = {2, 2, 4, 1};
  problem.c = {1, 1};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveIsOptimalAtAnyFeasiblePoint) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 1}};
  problem.b = {1, 1};
  problem.c = {0, 0};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 0.0, 1e-12);
}

TEST(Simplex, DualSolutionSatisfiesStrongDuality) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  // bᵀy equals the primal optimum, and y is dual-feasible: Aᵀy >= c.
  EXPECT_NEAR(dot(problem.b, result.y), result.objective, 1e-8);
  const Vec aty = problem.a.multiply_transposed(result.y);
  for (std::size_t j = 0; j < problem.num_variables(); ++j)
    EXPECT_GE(aty[j], problem.c[j] - 1e-8);
}

TEST(Simplex, SolutionIsPrimalFeasible) {
  Rng rng(3);
  lp::LinearProgram problem;
  Matrix a(6, 4);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(0.0, 1.0);
  problem.a = std::move(a);
  problem.b.assign(6, 5.0);
  problem.c.assign(4, 1.0);
  const auto result = solve_simplex(problem);
  ASSERT_EQ(result.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(problem.satisfies_constraints(result.x, 1.0 + 1e-9));
}

TEST(Simplex, ReportsPivotsAndWallTime) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  const auto result = solve_simplex(problem);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_GE(result.wall_seconds, 0.0);
}

}  // namespace
}  // namespace memlp::solvers
