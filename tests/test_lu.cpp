// Tests for LU factorization with partial pivoting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

Matrix random_well_conditioned(std::size_t n, Rng& rng) {
  // Random matrix with boosted diagonal — comfortably non-singular.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  for (std::size_t i = 0; i < n; ++i)
    m(i, i) += static_cast<double>(n) + 1.0;
  return m;
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vec b{3, 5};
  const Vec x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, IdentityIsFixedPoint) {
  const Matrix eye = Matrix::identity(5);
  const Vec b{1, 2, 3, 4, 5};
  EXPECT_EQ(lu_solve(eye, b), b);
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuFactorization(Matrix(2, 3)), DimensionError);
}

TEST(Lu, DetectsSingular) {
  const Matrix singular{{1, 2}, {2, 4}};
  const LuFactorization lu(singular);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu_solve(singular, Vec{1, 1}), NumericalError);
  EXPECT_FALSE(lu.inverse_norm_estimate().has_value());
}

TEST(Lu, ZeroPivotNeedsRowSwap) {
  // (0,0) entry is zero; partial pivoting must still factor it.
  const Matrix a{{0, 1}, {1, 0}};
  const Vec x = lu_solve(a, Vec{2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  const LuFactorization lu(Matrix{{3, 0}, {0, 2}});
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  // Permutation flips the sign.
  const LuFactorization perm(Matrix{{0, 1}, {1, 0}});
  EXPECT_NEAR(perm.determinant(), -1.0, 1e-12);
}

TEST(Lu, LogAbsDeterminantMatches) {
  Rng rng(5);
  const Matrix a = random_well_conditioned(6, rng);
  const LuFactorization lu(a);
  EXPECT_NEAR(lu.log_abs_determinant(), std::log(std::abs(lu.determinant())),
              1e-9);
}

TEST(Lu, SolveTransposedMatchesTransposeSolve) {
  Rng rng(6);
  const Matrix a = random_well_conditioned(8, rng);
  Vec b(8);
  for (double& v : b) v = rng.normal();
  const LuFactorization lu(a);
  const Vec xt = lu.solve_transposed(b);
  const Vec expected = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(xt[i], expected[i], 1e-9);
}

TEST(Lu, InverseNormEstimateIsLowerBoundOfTrueNorm) {
  // For diag(1, 1/2, 1/10): ||A^{-1}||_1 = 10.
  const Matrix a = Matrix::diagonal(Vec{1.0, 0.5, 0.1});
  const LuFactorization lu(a);
  const auto estimate = lu.inverse_norm_estimate();
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 10.0, 1e-6);
}

// Property sweep: residual of random solves is tiny across sizes.
class LuRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRoundTrip, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  const Vec x = lu_solve(a, b);
  const Vec residual = sub(gemv(a, x), b);
  EXPECT_LT(norm_inf(residual), 1e-9 * (1.0 + norm_inf(b)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144));

// Property: solve(A, A*x) recovers x.
class LuRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRecovery, RecoversKnownSolution) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  Vec x_true(n);
  for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
  const Vec b = gemv(a, x_true);
  const Vec x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuRecovery,
                         ::testing::Values(2, 4, 16, 32, 64, 100));

}  // namespace
}  // namespace memlp
