// Tests for LU factorization with partial pivoting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "linalg/ops.hpp"

namespace memlp {
namespace {

Matrix random_well_conditioned(std::size_t n, Rng& rng) {
  // Random matrix with boosted diagonal — comfortably non-singular.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  for (std::size_t i = 0; i < n; ++i)
    m(i, i) += static_cast<double>(n) + 1.0;
  return m;
}

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vec b{3, 5};
  const Vec x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, IdentityIsFixedPoint) {
  const Matrix eye = Matrix::identity(5);
  const Vec b{1, 2, 3, 4, 5};
  EXPECT_EQ(lu_solve(eye, b), b);
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuFactorization(Matrix(2, 3)), DimensionError);
}

TEST(Lu, DetectsSingular) {
  const Matrix singular{{1, 2}, {2, 4}};
  const LuFactorization lu(singular);
  EXPECT_TRUE(lu.singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu_solve(singular, Vec{1, 1}), NumericalError);
  EXPECT_FALSE(lu.inverse_norm_estimate().has_value());
}

TEST(Lu, ZeroPivotNeedsRowSwap) {
  // (0,0) entry is zero; partial pivoting must still factor it.
  const Matrix a{{0, 1}, {1, 0}};
  const Vec x = lu_solve(a, Vec{2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  const LuFactorization lu(Matrix{{3, 0}, {0, 2}});
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  // Permutation flips the sign.
  const LuFactorization perm(Matrix{{0, 1}, {1, 0}});
  EXPECT_NEAR(perm.determinant(), -1.0, 1e-12);
}

TEST(Lu, LogAbsDeterminantMatches) {
  Rng rng(5);
  const Matrix a = random_well_conditioned(6, rng);
  const LuFactorization lu(a);
  EXPECT_NEAR(lu.log_abs_determinant(), std::log(std::abs(lu.determinant())),
              1e-9);
}

TEST(Lu, SolveTransposedMatchesTransposeSolve) {
  Rng rng(6);
  const Matrix a = random_well_conditioned(8, rng);
  Vec b(8);
  for (double& v : b) v = rng.normal();
  const LuFactorization lu(a);
  const Vec xt = lu.solve_transposed(b);
  const Vec expected = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(xt[i], expected[i], 1e-9);
}

TEST(Lu, InverseNormEstimateIsLowerBoundOfTrueNorm) {
  // For diag(1, 1/2, 1/10): ||A^{-1}||_1 = 10.
  const Matrix a = Matrix::diagonal(Vec{1.0, 0.5, 0.1});
  const LuFactorization lu(a);
  const auto estimate = lu.inverse_norm_estimate();
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 10.0, 1e-6);
}

// Property sweep: residual of random solves is tiny across sizes.
class LuRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRoundTrip, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  const Vec x = lu_solve(a, b);
  const Vec residual = sub(gemv(a, x), b);
  EXPECT_LT(norm_inf(residual), 1e-9 * (1.0 + norm_inf(b)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144));

// Property: solve(A, A*x) recovers x.
class LuRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRecovery, RecoversKnownSolution) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  Vec x_true(n);
  for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
  const Vec b = gemv(a, x_true);
  const Vec x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuRecovery,
                         ::testing::Values(2, 4, 16, 32, 64, 100));

/// Reference implementation: the plain unblocked right-looking elimination
/// (the algorithm the panel-blocked production code claims to reproduce
/// bit for bit), followed by the same substitution recurrences as solve().
Vec unblocked_lu_solve(Matrix lu, std::span<const double> b) {
  const std::size_t n = lu.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  const double scale = std::max(lu.max_abs(), 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    EXPECT_GT(pivot_mag, 1e-13 * scale);
    if (pivot_row != k) {
      std::swap_ranges(lu.row(k).begin(), lu.row(k).end(),
                       lu.row(pivot_row).begin());
      std::swap(perm[k], perm[pivot_row]);
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = lu(i, k) * inv_pivot;
      lu(i, k) = lik;
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= lik * lu(k, j);
    }
  }
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu(i, j) * x[j];
    x[i] = sum;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu(ii, j) * x[j];
    x[ii] = sum / lu(ii, ii);
  }
  return x;
}

// The panel-blocked elimination must be BIT-IDENTICAL to the unblocked
// algorithm across sizes that exercise a partial final panel (n % 32 != 0),
// exact panel multiples, and the parallel trailing-update path (trailing
// rows >= 96) — the exact-settle golden traces depend on it.
class LuBlockedBitExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuBlockedBitExact, MatchesUnblockedEliminationBitwise) {
  const std::size_t n = GetParam();
  Rng rng(3000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  Vec b(n);
  for (double& v : b) v = rng.normal();
  const LuFactorization lu(a);
  ASSERT_FALSE(lu.singular());
  const Vec x = lu.solve(b);
  const Vec reference = unblocked_lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(x[i], reference[i]) << "row " << i << " at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuBlockedBitExact,
                         ::testing::Values(1, 31, 32, 33, 64, 97, 130, 160));

// solve_many must be bit-identical, column for column, to solve() — the
// factor-cache Z build relies on it.
class LuSolveMany : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSolveMany, BitwiseMatchesSolvePerColumn) {
  const std::size_t n = GetParam();
  Rng rng(4000 + n);
  const Matrix a = random_well_conditioned(n, rng);
  const LuFactorization lu(a);
  ASSERT_FALSE(lu.singular());
  const std::size_t nrhs = 7;
  Matrix b(n, nrhs);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < nrhs; ++t) b(i, t) = rng.normal();
  const Matrix x = lu.solve_many(b);
  for (std::size_t t = 0; t < nrhs; ++t) {
    Vec column(n);
    for (std::size_t i = 0; i < n; ++i) column[i] = b(i, t);
    const Vec expected = lu.solve(column);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(x(i, t), expected[i])
          << "rhs " << t << " row " << i << " at n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuSolveMany,
                         ::testing::Values(1, 2, 13, 40, 130));

TEST(Lu, SolveManyUnitColumnsGiveInverseColumns) {
  Rng rng(77);
  const std::size_t n = 12;
  const Matrix a = random_well_conditioned(n, rng);
  const LuFactorization lu(a);
  Matrix rhs(n, 3);
  rhs(2, 0) = 1.0;
  rhs(5, 1) = 1.0;
  rhs(9, 2) = 1.0;
  const Matrix z = lu.solve_many(rhs);
  // A·z_t = e_{r_t}.
  for (std::size_t t = 0; t < 3; ++t) {
    Vec zt(n);
    for (std::size_t i = 0; i < n; ++i) zt[i] = z(i, t);
    const Vec az = gemv(a, zt);
    const std::size_t unit = t == 0 ? 2u : t == 1 ? 5u : 9u;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(az[i], i == unit ? 1.0 : 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace memlp
