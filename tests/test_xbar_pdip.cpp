// Tests for the crossbar PDIP solver (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

XbarPdipOptions ideal_hardware() {
  XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::none();
  options.hardware.crossbar.conductance_levels = 1 << 20;
  options.hardware.crossbar.io_bits = 0;
  return options;
}

XbarPdipOptions paper_hardware(double variation) {
  XbarPdipOptions options;  // 256 levels, 8-bit I/O — the paper's setup
  if (variation > 0.0)
    options.hardware.crossbar.variation =
        mem::VariationModel::uniform(variation);
  else
    options.hardware.crossbar.variation = mem::VariationModel::none();
  return options;
}

lp::LinearProgram textbook() {
  lp::LinearProgram problem;
  problem.a = Matrix{{1, 0}, {0, 2}, {3, 2}};
  problem.b = {4, 12, 18};
  problem.c = {3, 5};
  return problem;
}

TEST(XbarPdip, IdealHardwareMatchesExactOptimum) {
  const auto outcome = solve_xbar_pdip(textbook(), ideal_hardware());
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(outcome.result.objective, 36.0), 1e-3);
}

TEST(XbarPdip, ReportsSystemStructure) {
  const auto problem = textbook();  // m=3, n=2, A all non-negative
  const auto outcome = solve_xbar_pdip(problem, ideal_hardware());
  // Base KKT dim 2(n+m) = 10; −I block forces n=2 compensations.
  EXPECT_EQ(outcome.stats.compensations, 2u);
  EXPECT_EQ(outcome.stats.system_dim, 12u);
}

TEST(XbarPdip, NegativeCoefficientsHandled) {
  Rng rng(1);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  generator.negative_fraction = 0.4;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  const auto outcome = solve_xbar_pdip(problem, ideal_hardware());
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(outcome.stats.compensations, problem.num_variables());
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            1e-2);
}

TEST(XbarPdip, PaperPrecisionStaysAccurate) {
  Rng rng(2);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  const auto outcome = solve_xbar_pdip(problem, paper_hardware(0.0));
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  // 8-bit I/O and 256-level writes floor the accuracy at the few-percent
  // level the paper reports (§4.3).
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.05);
}

class XbarVariationSweep : public ::testing::TestWithParam<int> {};

TEST_P(XbarVariationSweep, AccuracyWithinPaperRange) {
  const double variation = GetParam() / 100.0;
  Rng rng(3);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  auto options = paper_hardware(variation);
  options.seed = 77;
  const auto outcome = solve_xbar_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal)
      << "variation " << variation;
  // The paper reports 0.2%–9.9% relative error up to 20% variation; leave
  // margin for small problems (accuracy improves with size, Fig. 5).
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.15)
      << "variation " << variation;
}

INSTANTIATE_TEST_SUITE_P(Sweep, XbarVariationSweep,
                         ::testing::Values(0, 5, 10, 20));

TEST(XbarPdip, DetectsInfeasibility) {
  Rng rng(4);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_infeasible(generator, rng);
  const auto outcome = solve_xbar_pdip(problem, paper_hardware(0.10));
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kInfeasible);
}

TEST(XbarPdip, DetectsUnbounded) {
  lp::LinearProgram problem;
  problem.a = Matrix{{1.0, -1.0}};
  problem.b = {1.0};
  problem.c = {1.0, 0.0};
  const auto outcome = solve_xbar_pdip(problem, ideal_hardware());
  EXPECT_EQ(outcome.result.status, lp::SolveStatus::kUnbounded);
}

TEST(XbarPdip, PerIterationWritesAreOrderN) {
  Rng rng(5);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto outcome = solve_xbar_pdip(problem, paper_hardware(0.0));
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  const auto iterative =
      outcome.stats.backend.since(outcome.stats.programming);
  const std::size_t n_plus_m =
      problem.num_variables() + problem.num_constraints();
  // §3.5: O(N) cells per iteration — at most the 2(n+m) diagonal cells.
  EXPECT_LE(iterative.xbar.cells_written,
            outcome.stats.iterations * 2 * n_plus_m);
  EXPECT_GT(iterative.xbar.cells_written, 0u);
  // One MVM and one solve settle per iteration.
  EXPECT_LE(iterative.xbar.mvm_ops, outcome.stats.iterations);
  EXPECT_LE(iterative.xbar.solve_ops, outcome.stats.iterations);
}

TEST(XbarPdip, ProgrammingStatsAreSeparated) {
  const auto outcome = solve_xbar_pdip(textbook(), paper_hardware(0.0));
  // The initial program writes every occupied cell (structural zeros of the
  // block-sparse KKT matrix stay at the erased level for free, §3.5), which
  // is still far more than one iteration's 2(n+m) diagonal rewrites.
  const std::size_t dim = outcome.stats.system_dim;
  EXPECT_GE(outcome.stats.programming.xbar.cells_written, 2 * dim);
  EXPECT_LT(outcome.stats.programming.xbar.cells_written, dim * dim);
  EXPECT_GE(outcome.stats.backend.xbar.cells_written,
            outcome.stats.programming.xbar.cells_written);
}

TEST(XbarPdip, DeterministicForFixedSeed) {
  Rng rng(6);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  auto options = paper_hardware(0.10);
  options.seed = 123;
  const auto first = solve_xbar_pdip(problem, options);
  const auto second = solve_xbar_pdip(problem, options);
  EXPECT_EQ(first.result.status, second.result.status);
  EXPECT_DOUBLE_EQ(first.result.objective, second.result.objective);
  EXPECT_EQ(first.stats.iterations, second.stats.iterations);
}

TEST(XbarPdip, SolutionPassesAlphaCheck) {
  Rng rng(7);
  lp::GeneratorOptions generator;
  generator.constraints = 16;
  const auto problem = lp::random_feasible(generator, rng);
  const auto outcome = solve_xbar_pdip(problem, paper_hardware(0.10));
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  // The accepted solution satisfies the true constraints up to the
  // representational error of 10%-variation hardware (α = 1 + 1.5·var).
  EXPECT_TRUE(problem.satisfies_constraints(outcome.result.x, 1.15));
}

TEST(XbarPdip, NocBackendEngagesForLargeSystems) {
  Rng rng(8);
  lp::GeneratorOptions generator;
  generator.constraints = 12;
  const auto problem = lp::random_feasible(generator, rng);
  auto options = ideal_hardware();
  options.hardware.force_noc = true;
  options.hardware.tile_dim = 16;
  const auto outcome = solve_xbar_pdip(problem, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(outcome.stats.backend.num_tiles, 1u);
  EXPECT_GT(outcome.stats.backend.noc.value_hops, 0u);
}


TEST(XbarPdip, MehrotraExtensionSavesIterations) {
  Rng rng(9);
  lp::GeneratorOptions generator;
  generator.constraints = 24;
  const auto problem = lp::random_feasible(generator, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  auto plain = paper_hardware(0.05);
  plain.seed = 77;
  const auto base = solve_xbar_pdip(problem, plain);
  ASSERT_EQ(base.result.status, lp::SolveStatus::kOptimal);

  auto mehrotra = plain;
  mehrotra.pdip.predictor_corrector = true;
  const auto pc = solve_xbar_pdip(problem, mehrotra);
  ASSERT_EQ(pc.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(pc.result.objective, reference.objective),
            0.10);
  // Fewer iterations at the price of extra settles per iteration.
  EXPECT_LT(pc.stats.iterations, base.stats.iterations);
  const auto iterative_pc = pc.stats.backend.since(pc.stats.programming);
  EXPECT_GT(iterative_pc.xbar.solve_ops, pc.stats.iterations);
}

}  // namespace
}  // namespace memlp::core
