// Tests for the LP workload generators: advertised properties must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "lp/generator.hpp"
#include "solvers/simplex.hpp"

namespace memlp::lp {
namespace {

TEST(Generator, PaperVariableRatio) {
  GeneratorOptions options;
  options.constraints = 256;
  EXPECT_EQ(options.effective_variables(), 85u);  // m/3
  options.constraints = 2;
  EXPECT_EQ(options.effective_variables(), 1u);  // floor at 1
  options.variables = 7;
  EXPECT_EQ(options.effective_variables(), 7u);  // explicit override
}

TEST(Generator, FeasibleShapesMatchOptions) {
  Rng rng(1);
  GeneratorOptions options;
  options.constraints = 24;
  const LinearProgram lp = random_feasible(options, rng);
  EXPECT_EQ(lp.num_constraints(), 24u);
  EXPECT_EQ(lp.num_variables(), 8u);
}

TEST(Generator, NegativeFractionControlsSigns) {
  Rng rng(2);
  GeneratorOptions options;
  options.constraints = 30;
  options.negative_fraction = 0.0;
  const LinearProgram nonneg = random_feasible(options, rng);
  EXPECT_TRUE(nonneg.a.nonnegative());

  options.negative_fraction = 0.5;
  const LinearProgram mixed = random_feasible(options, rng);
  EXPECT_FALSE(mixed.a.nonnegative());
}

TEST(Generator, SparsityProducesZeros) {
  Rng rng(3);
  GeneratorOptions options;
  options.constraints = 30;
  options.sparsity = 0.6;
  const LinearProgram lp = random_feasible(options, rng);
  const std::size_t cells = lp.a.rows() * lp.a.cols();
  const double fraction =
      static_cast<double>(cells - lp.a.nnz()) / static_cast<double>(cells);
  EXPECT_GT(fraction, 0.4);
}

// Property: generated feasible LPs are solvable to a finite optimum.
class FeasibleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FeasibleSweep, SimplexFindsFiniteOptimum) {
  Rng rng(100 + GetParam());
  GeneratorOptions options;
  options.constraints = GetParam();
  const LinearProgram lp = random_feasible(options, rng);
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal)
      << "m=" << GetParam() << ": " << to_string(result.status);
  EXPECT_TRUE(lp.satisfies_constraints(result.x, 1.0 + 1e-7));
  EXPECT_GT(result.objective, 0.0);  // c > 0 and interior x* > 0 exists
}

INSTANTIATE_TEST_SUITE_P(Sweep, FeasibleSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

// Property: generated infeasible LPs are detected as such.
class InfeasibleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InfeasibleSweep, SimplexDetectsInfeasibility) {
  Rng rng(200 + GetParam());
  GeneratorOptions options;
  options.constraints = GetParam();
  const LinearProgram lp = random_infeasible(options, rng);
  EXPECT_EQ(solvers::solve_simplex(lp).status, SolveStatus::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InfeasibleSweep,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Generator, MaxFlowRoutingIsSolvableAndBounded) {
  Rng rng(5);
  const LinearProgram lp = max_flow_routing(2, 3, rng);
  // Conservation rows make A carry negative entries.
  EXPECT_FALSE(lp.a.nonnegative());
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_GT(result.objective, 0.0);  // some flow can always be pushed
}

TEST(Generator, MaxFlowRespectsSourceCapacity) {
  Rng rng(6);
  const LinearProgram lp = max_flow_routing(3, 2, rng);
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  // Total flow cannot exceed the sum of source-edge capacities (the first
  // `width` capacity rows).
  double source_capacity = 0.0;
  for (std::size_t e = 0; e < 2; ++e) source_capacity += lp.b[e];
  EXPECT_LE(result.objective, source_capacity + 1e-9);
}

TEST(Generator, ProductionSchedulingIsNonNegativeLp) {
  Rng rng(7);
  const LinearProgram lp = production_scheduling(6, 4, rng);
  EXPECT_TRUE(lp.a.nonnegative());
  EXPECT_EQ(lp.num_constraints(), 4u);
  EXPECT_EQ(lp.num_variables(), 6u);
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_GT(result.objective, 0.0);
}

TEST(Generator, TransportationIsFeasibleWithNegativeCost) {
  Rng rng(8);
  const LinearProgram lp = transportation(3, 4, rng);
  EXPECT_EQ(lp.num_constraints(), 7u);
  EXPECT_EQ(lp.num_variables(), 12u);
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  // Cost minimization recast as max of a negative objective.
  EXPECT_LT(result.objective, 0.0);
}

TEST(Generator, DeterministicGivenSeed) {
  GeneratorOptions options;
  options.constraints = 16;
  Rng rng_a(42);
  Rng rng_b(42);
  const LinearProgram a = random_feasible(options, rng_a);
  const LinearProgram b = random_feasible(options, rng_b);
  EXPECT_EQ(a.a, b.a);
  EXPECT_EQ(a.b, b.b);
  EXPECT_EQ(a.c, b.c);
}


TEST(Generator, DietIsFeasibleCostMinimization) {
  Rng rng(9);
  const LinearProgram lp = diet(8, 5, rng);
  EXPECT_EQ(lp.num_variables(), 8u);
  EXPECT_EQ(lp.num_constraints(), 13u);
  EXPECT_FALSE(lp.a.nonnegative());  // nutrient-minimum rows are negative
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_LT(result.objective, 0.0);  // minimized cost, negated
  // Every portion respects its cap.
  for (double portion : result.x) {
    EXPECT_GE(portion, -1e-9);
    EXPECT_LE(portion, 10.0 + 1e-9);
  }
}

TEST(Generator, AssignmentRelaxationIsBoundedByTaskValues) {
  Rng rng(10);
  const LinearProgram lp = assignment(5, 3, rng);
  EXPECT_EQ(lp.num_variables(), 15u);
  EXPECT_EQ(lp.num_constraints(), 8u);
  const auto result = solvers::solve_simplex(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  // At most one task per worker: objective <= sum of the best value per
  // worker; at least one worker per task keeps it >= something positive.
  EXPECT_GT(result.objective, 0.0);
  double per_worker_best_sum = 0.0;
  for (std::size_t w = 0; w < 5; ++w) {
    double best = 0.0;
    for (std::size_t t = 0; t < 3; ++t)
      best = std::max(best, lp.c[w * 3 + t]);
    per_worker_best_sum += best;
  }
  EXPECT_LE(result.objective, per_worker_best_sum + 1e-9);
}

TEST(Generator, AssignmentRequiresEnoughWorkers) {
  Rng rng(11);
  EXPECT_THROW((void)assignment(2, 3, rng), ContractViolation);
}

}  // namespace
}  // namespace memlp::lp
