// Failure-injection tests: the solvers must degrade gracefully — report a
// non-optimal status, never crash, never return silently wrong "optimal"
// results — under hostile hardware and pathological problems.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/ls_pdip.hpp"
#include "core/pdip.hpp"
#include "core/xbar_pdip.hpp"
#include "lp/generator.hpp"
#include "lp/result.hpp"
#include "solvers/simplex.hpp"

namespace memlp::core {
namespace {

lp::LinearProgram small_feasible(std::uint64_t seed) {
  Rng rng(seed);
  lp::GeneratorOptions options;
  options.constraints = 12;
  return lp::random_feasible(options, rng);
}

TEST(FailureInjection, ExtremeVariationNeverReturnsGarbageOptimal) {
  const auto problem = small_feasible(1);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  XbarPdipOptions options;
  options.hardware.crossbar.variation =
      mem::VariationModel::uniform(0.60);  // far beyond the paper's 20%
  options.seed = 3;
  const auto outcome = solve_xbar_pdip(problem, options);
  if (outcome.result.optimal()) {
    // If the solver claims success, the answer must actually be defensible.
    EXPECT_LT(lp::relative_error(outcome.result.objective,
                                 reference.objective),
              0.8);
    EXPECT_TRUE(problem.satisfies_constraints(outcome.result.x, 2.0));
  }  // NOLINT
}

TEST(FailureInjection, TwoBitIoDegradesGracefully) {
  const auto problem = small_feasible(2);
  XbarPdipOptions options;
  options.hardware.crossbar.io_bits = 2;  // nearly unusable converter
  options.seed = 4;
  EXPECT_NO_THROW({
    const auto outcome = solve_xbar_pdip(problem, options);
    (void)outcome;
  });
}

TEST(FailureInjection, BinaryConductanceLevels) {
  const auto problem = small_feasible(3);
  XbarPdipOptions options;
  options.hardware.crossbar.conductance_levels = 2;  // binary devices
  options.seed = 5;
  const auto outcome = solve_xbar_pdip(problem, options);
  // Binary writes cannot represent the KKT blocks; expect an honest
  // failure, or — if it somehow passes the checks — a sane solution.
  if (outcome.result.optimal()) {
    EXPECT_TRUE(problem.satisfies_constraints(outcome.result.x, 2.0));
  }
}

TEST(FailureInjection, RankDeficientRowsAreHandledOrRejected) {
  // Two-sided rows (equality via two inequalities) make A rank-deficient in
  // the Schur system of Algorithm 2; it must fail cleanly, and Algorithm 1
  // must solve.
  Rng rng(6);
  const auto problem = lp::max_flow_routing(2, 2, rng);
  const auto reference = solvers::solve_simplex(problem);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);

  XbarPdipOptions xbar_options;
  xbar_options.seed = 7;
  const auto xbar = solve_xbar_pdip(problem, xbar_options);
  ASSERT_EQ(xbar.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(xbar.result.objective, reference.objective),
            0.10);

  LsPdipOptions ls_options;
  ls_options.seed = 7;
  const auto ls = solve_ls_pdip(problem, ls_options);
  if (ls.result.optimal())
    EXPECT_LT(lp::relative_error(ls.result.objective, reference.objective),
              0.25);
  else
    EXPECT_NE(ls.result.status, lp::SolveStatus::kInfeasible)
        << "a feasible LP must not be misclassified as infeasible";
}

TEST(FailureInjection, DegenerateSingleVariableProblems) {
  // m = 1, n = 1 corner cases across all solvers.
  lp::LinearProgram tiny;
  tiny.a = Matrix{{2.0}};
  tiny.b = {10.0};
  tiny.c = {3.0};
  EXPECT_NEAR(solvers::solve_simplex(tiny).objective, 15.0, 1e-9);
  EXPECT_NEAR(solve_pdip(tiny).objective, 15.0, 1e-3);
  XbarPdipOptions options;
  options.seed = 8;
  const auto outcome = solve_xbar_pdip(tiny, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(outcome.result.objective, 15.0, 1.0);
}

TEST(FailureInjection, ZeroObjective) {
  lp::LinearProgram flat;
  flat.a = Matrix{{1.0, 0.5}, {0.5, 1.0}};
  flat.b = {2.0, 2.0};
  flat.c = {0.0, 0.0};
  XbarPdipOptions options;
  options.seed = 9;
  const auto outcome = solve_xbar_pdip(flat, options);
  if (outcome.result.optimal()) {
    EXPECT_NEAR(outcome.result.objective, 0.0, 1e-6);
  }
}

TEST(FailureInjection, TinyRhsValues) {
  lp::LinearProgram small_b;
  small_b.a = Matrix{{1.0, 0.3}, {0.4, 1.0}, {1.0, 1.0}};
  small_b.b = {1e-5, 2e-5, 2.5e-5};  // normalization must absorb the scale
  small_b.c = {1.0, 1.0};
  const auto reference = solvers::solve_simplex(small_b);
  ASSERT_EQ(reference.status, lp::SolveStatus::kOptimal);
  XbarPdipOptions options;
  options.seed = 10;
  const auto outcome = solve_xbar_pdip(small_b, options);
  ASSERT_EQ(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_LT(lp::relative_error(outcome.result.objective, reference.objective),
            0.10);
}

TEST(FailureInjection, RetryExhaustionReportsFailureNotOptimal) {
  const auto problem = small_feasible(11);
  XbarPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.50);
  options.max_retries = 0;
  options.acceptance_merit = 1e-9;  // impossible bar: must not be "optimal"
  options.pdip.max_iterations = 30;
  options.seed = 12;
  const auto outcome = solve_xbar_pdip(problem, options);
  EXPECT_NE(outcome.result.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(outcome.stats.attempts, 1u);
}

TEST(FailureInjection, LsSolverSameContracts) {
  const auto problem = small_feasible(13);
  LsPdipOptions options;
  options.hardware.crossbar.variation = mem::VariationModel::uniform(0.50);
  options.seed = 14;
  EXPECT_NO_THROW({
    const auto outcome = solve_ls_pdip(problem, options);
    if (outcome.result.optimal()) {
      EXPECT_TRUE(problem.satisfies_constraints(outcome.result.x, 2.0));
    }
  });
}

}  // namespace
}  // namespace memlp::core
