// Tests for the HP linear ion-drift memristor device model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "memristor/device.hpp"

namespace memlp::mem {
namespace {

TEST(DeviceParameters, DefaultsAreValid) {
  DeviceParameters params;
  EXPECT_NO_THROW(params.validate());
  EXPECT_DOUBLE_EQ(params.g_min(), 1.0 / params.r_off_ohm);
  EXPECT_DOUBLE_EQ(params.g_max(), 1.0 / params.r_on_ohm);
  EXPECT_LT(params.g_min(), params.g_max());
}

TEST(DeviceParameters, RejectsInvalidConfigurations) {
  DeviceParameters params;
  params.r_on_ohm = -1;
  EXPECT_THROW(params.validate(), ConfigError);

  params = {};
  params.r_on_ohm = params.r_off_ohm;  // no resistance window
  EXPECT_THROW(params.validate(), ConfigError);

  params = {};
  params.v_write = 0.5;  // below threshold
  EXPECT_THROW(params.validate(), ConfigError);

  params = {};
  params.pulse_width_s = 0;
  EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Device, FreshOffDeviceHasHighResistance) {
  const Device device(DeviceParameters{}, 0.0);
  EXPECT_DOUBLE_EQ(device.memristance(), DeviceParameters{}.r_off_ohm);
}

TEST(Device, FullyOnDeviceHasLowResistance) {
  const Device device(DeviceParameters{}, 1.0);
  EXPECT_DOUBLE_EQ(device.memristance(), DeviceParameters{}.r_on_ohm);
}

TEST(Device, SubThresholdPulseDoesNotSwitch) {
  DeviceParameters params;
  Device device(params, 0.5);
  const double before = device.state();
  device.apply_pulse(params.v_threshold * 0.9, 1e-6);
  EXPECT_DOUBLE_EQ(device.state(), before);
}

TEST(Device, PositivePulseIncreasesConductance) {
  DeviceParameters params;
  Device device(params, 0.2);
  const double g_before = device.conductance();
  device.apply_pulse(params.v_write, params.pulse_width_s);
  EXPECT_GT(device.conductance(), g_before);
}

TEST(Device, NegativePulseDecreasesConductance) {
  DeviceParameters params;
  Device device(params, 0.8);
  const double g_before = device.conductance();
  device.apply_pulse(-params.v_write, params.pulse_width_s);
  EXPECT_LT(device.conductance(), g_before);
}

TEST(Device, StateSaturatesAtBounds) {
  DeviceParameters params;
  Device device(params, 0.99);
  for (int i = 0; i < 100'000; ++i)
    device.apply_pulse(params.v_write, params.pulse_width_s);
  EXPECT_LE(device.state(), 1.0);
  EXPECT_NEAR(device.memristance(), params.r_on_ohm, params.r_on_ohm * 0.01);
}

TEST(Device, PulseDissipatesEnergy) {
  DeviceParameters params;
  Device device(params, 0.5);
  const double energy =
      device.apply_pulse(params.v_write, params.pulse_width_s);
  EXPECT_GT(energy, 0.0);
  // Upper bound: all at R_ON for the whole pulse.
  EXPECT_LT(energy, params.v_write * params.v_write / params.r_on_ohm *
                        params.pulse_width_s * 1.01);
}

TEST(Device, ProgramToConductanceReachesTarget) {
  DeviceParameters params;
  Device device(params, 0.0);
  const double target = 0.4 * params.g_max();
  const std::size_t pulses = device.program_to_conductance(target, 0.01);
  EXPECT_GT(pulses, 0u);
  EXPECT_NEAR(device.conductance(), target, 0.011 * target);
}

TEST(Device, ProgramDownward) {
  DeviceParameters params;
  Device device(params, 1.0);
  const double target = 0.1 * params.g_max();
  device.program_to_conductance(target, 0.01);
  EXPECT_NEAR(device.conductance(), target, 0.011 * target);
}

TEST(Device, ProgramRejectsOutOfWindowTarget) {
  DeviceParameters params;
  Device device(params, 0.0);
  EXPECT_THROW(device.program_to_conductance(params.g_max() * 2.0),
               ContractViolation);
}

}  // namespace
}  // namespace memlp::mem
